"""Sharded ingestion: hash-partitioned sampler replicas with an exact merge.

:class:`ShardedIngestor` scales the batched ingestion seam horizontally.  A
*partition attribute* is chosen (by default the attribute shared by the most
relations); every arriving chunk is split by a stable hash of that
attribute's value, relations that do not contain the attribute are broadcast
to every shard, and each shard runs its own independent sampler replica over
its share of the stream.  Shards share no mutable state, so the per-chunk
work is embarrassingly parallel — :meth:`ShardedIngestor.start_pool` moves
the live shard replicas into a persistent one-process-per-shard
:class:`~repro.ingest.pool.ShardWorkerPool` (:meth:`ShardedIngestor
.ingest_parallel` is the one-call convenience wrapper), while the serial
:meth:`ShardedIngestor.ingest` keeps the same semantics in-process.  The
pool feeds every worker the exact sub-chunk sequence the serial path
produces and each replica starts from a snapshot of the parent-side state,
so pool-fed shards are *bit-identical* to a serial run under equal seeds —
ingestion, ``merged_sample``, checkpointing and ``statistics`` all keep
working against the live workers.

Correctness (the merge rule)
----------------------------
Every join result binds the partition attribute to a single value, so each
result is *formable in exactly one shard*: the shard owning the hash of that
value holds all of the result's partitioned tuples plus every broadcast
tuple.  The shard-local join result sets therefore partition the global
result set, and each shard's reservoir is — by the per-sampler guarantee — a
uniform sample without replacement of its local set at every chunk boundary.

:meth:`ShardedIngestor.merged_sample` turns those shard-local reservoirs
into one uniform sample of the *global* join via weighted subsampling:

1. the exact local result count ``n_s`` of every shard is computed from its
   index in ``O(N)`` (:func:`repro.relational.join.count_results`);
2. ``k`` distinct virtual positions are drawn uniformly from ``range(sum
   n_s)`` and mapped to shards — this realises the multivariate
   hypergeometric allocation ``(k_1, …, k_S)`` of a uniform ``k``-subset of
   the disjoint union;
3. each shard contributes a uniform ``k_s``-subset of its reservoir.  A
   uniform random subset of a uniform-without-replacement sample is itself a
   uniform-without-replacement sample of the underlying set, so the merged
   probability of any fixed ``k``-subset factorises to ``1 / C(sum n_s, k)``
   — exact uniformity, not an approximation.

The allocation can demand up to ``min(k, n_s)`` items from shard ``s``, so
per-shard reservoir capacity must be at least the merged sample size (the
default replica uses the same ``k``).
"""

from __future__ import annotations

import hashlib
import itertools
import random
import time
from bisect import bisect_right
from functools import lru_cache
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.backend import derive_seed, restore_backend, snapshot_backend
from ..core.reservoir_join import ReservoirJoin
from ..core.vectorized import VECTOR_MIN_ROWS
from ..relational.join import count_results
from ..relational.query import JoinQuery
from ..relational.schema import tuple_getter
from ..relational.stream import ColumnarChunk, StreamDelete, StreamTuple, numpy_or_none
from .batch import DEFAULT_CHUNK_SIZE, BatchIngestor
from .checkpoint import CODEC, CheckpointMismatchError
from .engine import EngineLane, IngestionEngine
from .pool import ShardWorkerPool, WorkerCrashError  # noqa: F401 (re-export)

#: Default shard count; the tentpole benchmark uses this value.
DEFAULT_NUM_SHARDS = 4


def stable_shard_hash(value: Sequence) -> int:
    """A deterministic hash of a projection tuple, stable across processes
    and consistent with join equality.

    Two requirements, neither met by the obvious candidates alone:

    * **process stability** — ``hash()`` is salted per process for strings,
      which would route the same tuple to different shards in different
      runs, so string/bytes components are digested instead;
    * **equality consistency** — the join indexes compare values with ``==``
      (``1 == 1.0 == True``), so join-equal components of different numeric
      types must land on the same shard.  A ``repr``-based digest would
      split them; for non-string components the built-in ``hash`` is used
      — it is equality-consistent by contract and unsalted for numeric
      types.

    Components must be strings, bytes, ``None`` or hashables whose built-in
    hash is process-stable (numbers, and tuples thereof) — which is what
    relation rows are made of.
    """
    hasher = hashlib.blake2b(digest_size=8)
    for component in value:
        if isinstance(component, str):
            hasher.update(b"s")
            hasher.update(component.encode("utf-8"))
        elif isinstance(component, bytes):
            hasher.update(b"b")
            hasher.update(component)
        elif component is None:  # hash(None) is id-derived before 3.12
            hasher.update(b"n")
        else:
            hasher.update(b"h")
            hasher.update(hash(component).to_bytes(9, "big", signed=True))
    return int.from_bytes(hasher.digest(), "big")


@lru_cache(maxsize=1 << 16)
def _hash_single(value) -> int:
    """Memoized ``stable_shard_hash((value,))`` for single-attribute keys.

    Join-key domains are small relative to stream length, so the same values
    recur chunk after chunk; caching the digest per distinct value turns the
    steady-state cost of :func:`stable_shard_hash_column` into pure array
    work.  Safe despite ``1 == 1.0 == True`` cache collisions: the digest is
    equality-consistent by design, so colliding keys map to identical
    digests anyway.
    """
    return stable_shard_hash((value,))


def stable_shard_hash_column(column):
    """Vectorized batch form of :func:`stable_shard_hash` over an int column.

    ``column`` is an ``int64`` array of single-attribute projection values
    (one per row); the result is a ``uint64`` array with ``out[i] ==
    stable_shard_hash((int(column[i]),))`` — the digest itself is not
    re-implemented in array ops (it cannot drift from the scalar) but
    *factorized*: :func:`numpy.unique` collapses the column to its distinct
    values, one scalar digest runs per distinct value (memoized across
    chunks by :func:`_hash_single`), and the inverse indices broadcast the
    results back.  Join-value columns repeat heavily (that is what makes
    them join keys), so this turns a blake2b per row into a cache hit per
    distinct value plus O(n log n) array work.
    """
    np = numpy_or_none()
    uniques, inverse = np.unique(column, return_inverse=True)
    hashes = np.fromiter(
        (_hash_single(value) for value in uniques.tolist()),
        dtype=np.uint64,
        count=len(uniques),
    )
    return hashes[inverse]


def route_rows(
    items,
    getters: Dict[str, Callable],
    num_shards: int,
    positions: Optional[Dict[str, int]] = None,
) -> Sequence[int]:
    """Shard assignments for a chunk: per stream position, the owning shard
    index, or ``-1`` for a broadcast tuple.

    This is *the* routing rule — :meth:`ShardedIngestor.shard_of`, the chunk
    splitter behind :meth:`ShardedIngestor.partition` (serial and pool wire
    paths alike) and the rebalancer's plan simulation all resolve shards
    through this one helper, so the vectorized and scalar routers cannot
    drift.

    ``items`` is a :class:`~repro.relational.stream.ColumnarChunk` (or
    anything :meth:`ColumnarChunk.from_items` accepts); ``getters`` maps the
    relations carrying the partition attribute to their projection getters —
    relations absent from it broadcast.  ``positions`` optionally maps those
    relations to the attribute's column position, enabling the vectorized
    hash for machine-int columns; every other column falls back to the
    scalar hash loop with identical results.  Returns an ``int64`` array
    when the columnar gate is on, else a plain list — indexed by stream
    position either way.
    """
    chunk = items if isinstance(items, ColumnarChunk) else ColumnarChunk.from_items(items)
    np = numpy_or_none()
    per_relation: List[Optional[Sequence[int]]] = []
    for relation in chunk.relations:
        rows = chunk.rows[relation]
        getter = getters.get(relation)
        if getter is None:
            per_relation.append(None)  # broadcast
            continue
        column = None
        if np is not None and positions is not None:
            position = positions.get(relation)
            if position is not None and len(rows) >= VECTOR_MIN_ROWS:
                column = chunk.column(relation, position)
        if column is not None:
            per_relation.append(
                (stable_shard_hash_column(column) % np.uint64(num_shards)).astype(
                    np.int64
                )
            )
        else:
            per_relation.append(
                [stable_shard_hash(getter(row)) % num_shards for row in rows]
            )
    if np is not None:
        out = np.empty(len(chunk), dtype=np.int64)
        order = np.asarray(chunk.order, dtype=np.int64)
        for index, assignments in enumerate(per_relation):
            slots = np.nonzero(order == index)[0]
            if assignments is None:
                out[slots] = -1
            else:
                out[slots] = np.asarray(assignments, dtype=np.int64)
        return out
    cursors = [0] * len(chunk.relations)
    out_list: List[int] = []
    for index in chunk.order:
        assignments = per_relation[index]
        if assignments is None:
            out_list.append(-1)
        else:
            cursor = cursors[index]
            cursors[index] = cursor + 1
            out_list.append(assignments[cursor])
    return out_list


def partition_attribute(query: JoinQuery) -> str:
    """The default partition attribute: contained in the most relations.

    Relations not containing the attribute must be broadcast to every shard,
    so maximising coverage minimises replicated work.  Ties break by
    canonical attribute order, keeping the choice deterministic.
    """
    best: Optional[str] = None
    best_cover = -1
    for attr in query.output_attrs():
        cover = len(query.relations_with_attr(attr))
        if cover > best_cover:
            best, best_cover = attr, cover
    assert best is not None  # a query has at least one relation/attribute
    return best


def exact_result_count(sampler) -> int:
    """Exact size of the join result set a sampler's reservoir draws from.

    Works for any sampler built on :class:`~repro.index.dynamic_index
    .DynamicJoinIndex` (``ReservoirJoin`` counts its working query's join;
    ``CyclicReservoirJoin`` counts the bag join, which equals the original
    query's result set).
    """
    index = getattr(sampler, "index", None)
    if index is None:
        raise TypeError(
            f"{type(sampler).__name__} does not expose a dynamic index; "
            "the sharded merge needs exact local result counts"
        )
    return count_results(index.query, index.database)


@dataclass
class _ShardState:
    """What the merge needs from one shard: reservoir, exact count, capacity."""

    sample: List[dict]
    count: int
    capacity: int
    statistics: Dict[str, object] = field(default_factory=dict)


class ShardedIngestor:
    """Partition a stream across per-shard sampler replicas and merge exactly.

    Parameters
    ----------
    query:
        The join query (acyclic or cyclic — the replica factory decides).
    k:
        Default merged sample size; also the reservoir capacity of the
        default per-shard replicas.
    num_shards:
        How many shards to partition across.
    chunk_size:
        Stream tuples per ingested chunk (uniformity holds at every chunk
        boundary, exactly as for :class:`BatchIngestor`).
    partition_attr:
        Attribute to hash-partition on; defaults to the attribute contained
        in the most relations (:func:`partition_attribute`).  Relations not
        containing it are broadcast to every shard.
    factory:
        Optional ``factory(shard_index, rng) -> sampler`` building one
        replica per shard; defaults to a plain :class:`ReservoirJoin` of
        size ``k``.  Replicas must expose ``index`` (for exact counts) and
        ``sample``; :meth:`ingest_parallel` supports only the default.
    rng:
        Seedable randomness source; derives one independent RNG per shard
        and drives the merge subsampling.
    """

    def __init__(
        self,
        query: JoinQuery,
        k: int,
        num_shards: int = DEFAULT_NUM_SHARDS,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        partition_attr: Optional[str] = None,
        factory: Optional[Callable[[int, random.Random], object]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if k <= 0:
            raise ValueError("sample size k must be positive")
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.query = query
        self.k = k
        self.num_shards = num_shards
        self.chunk_size = chunk_size
        self.partition_attr = partition_attr or partition_attribute(query)
        if self.partition_attr not in query.attributes:
            raise ValueError(
                f"partition attribute {self.partition_attr!r} is not an "
                f"attribute of query {query.name!r}"
            )
        self._rng = rng if rng is not None else random.Random()
        self._shard_seeds = [derive_seed(self._rng) for _ in range(num_shards)]
        if factory is None:
            factory = lambda shard, shard_rng: ReservoirJoin(query, k, rng=shard_rng)
        self.samplers = [
            factory(shard, random.Random(self._shard_seeds[shard]))
            for shard in range(num_shards)
        ]
        self.ingestors = [
            BatchIngestor(sampler, chunk_size=chunk_size) for sampler in self.samplers
        ]
        # The shared dispatch loop: one lane per shard, the hash router as
        # the (validating) splitter, and the chunk-boundary counter roll-up
        # as the boundary hook.  All timing — partitioning cost, per-shard
        # busy seconds, the critical path — is the engine's accounting.
        self._engine = IngestionEngine(
            [
                EngineLane(f"shard-{shard}", ingestor.ingest_batch)
                for shard, ingestor in enumerate(self.ingestors)
            ],
            chunk_size=chunk_size,
            router=self._route,
            after_chunk=[
                lambda items, parts: self.note_chunk(
                    len(items), sum(map(len, parts))
                )
            ],
        )
        # Projection getters for the relations that carry the partition
        # attribute; every other relation is broadcast.  The positions map
        # carries the same information in the form the vectorized router
        # needs (a single attribute always projects one column).
        self._value_getters: Dict[str, Callable] = {}
        self._value_positions: Dict[str, int] = {}
        for schema in query.relations:
            if self.partition_attr in schema.attr_set:
                positions = schema.positions_of((self.partition_attr,))
                self._value_getters[schema.name] = tuple_getter(positions)
                self._value_positions[schema.name] = positions[0]
        # Stream-order shard assignments of the most recently *delivered*
        # chunk (see take_last_assignments) — lets the rebalancing planner
        # reuse routing work instead of re-hashing the window.
        self._last_assignments: Optional[Sequence[int]] = None
        self.tuples_ingested = 0
        self.batches_ingested = 0
        self.broadcast_deliveries = 0
        # Per-relation stream tuples routed so far (before broadcast
        # replication) — O(1) observability, surfaced via statistics();
        # dedup inside the shard samplers makes this mix unrecoverable from
        # stored state.
        self.relation_deliveries: Dict[str, int] = {
            name: 0 for name in query.relation_names
        }
        # Set by drivers that bypass the per-chunk barrier (the async
        # transport): the critical-path accumulator is then meaningless and
        # statistics() reports it as None instead of a misleading figure.
        self.timing_incomplete = False
        self._counts: Optional[List[int]] = None
        # The persistent worker-pool runtime (start_pool/close_pool): while
        # live, every shard replica resides in its worker process and all
        # per-shard reads go through the pool's chunk-boundary round trips.
        self._pool: Optional[ShardWorkerPool] = None
        # Measured wall clock spent inside ingest_parallel calls (submit
        # through drain) and one-time pool spawn cost — the honest figures
        # the one-shot Pool could only report as None.
        self.parallel_wall_seconds = 0.0
        self.pool_startup_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Timing (delegated to the engine's accounting)
    # ------------------------------------------------------------------ #
    # Shards share no state, so the wall clock of a one-worker-per-shard
    # deployment is, per chunk, the partitioning cost plus the *slowest*
    # shard's sub-chunk.  The engine accumulates exactly that; these views
    # keep the historical names (and stay writable, because the async
    # transport driver adds its own measurements into them).
    @property
    def partition_seconds(self) -> float:
        """Cumulative cost of hash-partitioning chunks across the shards."""
        return self._engine.route_seconds

    @partition_seconds.setter
    def partition_seconds(self, value: float) -> None:
        self._engine.route_seconds = value

    @property
    def critical_path_seconds(self) -> float:
        """Per-chunk partitioning cost + slowest shard, accumulated."""
        return self._engine.critical_path_seconds

    @critical_path_seconds.setter
    def critical_path_seconds(self, value: float) -> None:
        self._engine.critical_path_seconds = value

    @property
    def shard_busy_seconds(self) -> List[float]:
        """Per-shard busy time — the engine's live lane list (mutable)."""
        return self._engine.lane_busy_seconds

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def broadcast_relations(self) -> Tuple[str, ...]:
        """Relations replicated to every shard (no partition attribute)."""
        return tuple(
            name for name in self.query.relation_names
            if name not in self._value_getters
        )

    def shard_of(self, relation: str, row: Sequence) -> Optional[int]:
        """The shard owning ``(relation, row)``, or ``None`` for broadcast."""
        if relation not in self._value_getters:
            if relation not in self.query:
                raise KeyError(
                    f"relation {relation!r} is not part of query {self.query.name!r}"
                )
            return None
        row = tuple(row)
        chunk = ColumnarChunk((relation,), {relation: [row]}, [0])
        assignment = int(
            route_rows(
                chunk, self._value_getters, self.num_shards, self._value_positions
            )[0]
        )
        return None if assignment < 0 else assignment

    def partition(self, items: Iterable) -> List[List[Tuple[str, Tuple]]]:
        """Split a batch into per-shard ``(relation, row)`` sub-batches.

        The whole batch is validated first (unknown relation → ``KeyError``,
        wrong arity → ``ValueError``) so a failed call leaves every shard
        untouched.  Broadcast tuples appear in every shard's sub-batch.
        Side-effect-free: inspecting routing never advances any counter —
        the delivery points (:meth:`ingest_batch`, :meth:`ingest_parallel`,
        the async transport driver) use :meth:`_route` instead.
        """
        return self._split(items, count=False)

    def _route(self, items: Iterable) -> List[List[Tuple[str, Tuple]]]:
        """:meth:`partition` plus the ``relation_deliveries`` accounting.

        The internal delivery point: tuples routed through here are being
        *delivered* to shards, so the per-relation observability counters
        advance exactly once per stream tuple (and the chunk's shard
        assignments are recorded for :meth:`take_last_assignments`).
        """
        return self._split(items, count=True)

    def _split(
        self, items: Iterable, count: bool
    ) -> List[List[Tuple[str, Tuple]]]:
        if not isinstance(items, ColumnarChunk):
            items = list(items)
            if any(isinstance(item, StreamDelete) for item in items):
                return self._split_turnstile(items, count)
        chunk = (
            items if isinstance(items, ColumnarChunk) else ColumnarChunk.from_items(items)
        )
        chunk.validate(self.query)
        assignments = route_rows(
            chunk, self._value_getters, self.num_shards, self._value_positions
        )
        if count:
            deliveries = self.relation_deliveries
            for relation in chunk.relations:
                deliveries[relation] += len(chunk.rows[relation])
            self._last_assignments = assignments
        pairs = chunk.to_pairs()
        num_shards = self.num_shards
        np = numpy_or_none()
        if np is not None and isinstance(assignments, np.ndarray):
            broadcast = assignments < 0
            return [
                [pairs[i] for i in np.nonzero((assignments == shard) | broadcast)[0].tolist()]
                for shard in range(num_shards)
            ]
        parts: List[List[Tuple[str, Tuple]]] = [[] for _ in range(num_shards)]
        for pair, assignment in zip(pairs, assignments):
            if assignment < 0:
                for part in parts:
                    part.append(pair)
            else:
                parts[assignment].append(pair)
        return parts

    def _split_turnstile(
        self, items: List, count: bool
    ) -> List[List[Tuple[str, Tuple]]]:
        """Route a mixed insert/retraction chunk in stream order.

        Retractions follow *exactly* the routing rule of their inserts: a
        :class:`~repro.relational.stream.StreamDelete` of a partitioned
        relation goes to the one shard that owns (or will own) the row, and
        a retraction of a broadcast relation is broadcast — so every replica
        of the row receives its delete.  Combined with in-order delivery
        within each shard part, each shard's local state stays equal to the
        global turnstile state restricted to that shard, which is what the
        :meth:`merged_sample` partition argument needs.  The items are kept
        as-is (``StreamDelete`` objects pass through) so the per-shard
        sampler's ``ingest_batch`` sees retractions as retractions.

        This scalar path only runs for chunks that actually contain a
        retraction; insert-only chunks keep the columnar fast path of
        :meth:`_split` untouched.
        """
        arities = {schema.name: schema.arity for schema in self.query.relations}
        normalized: List[Tuple[bool, str, Tuple, object]] = []
        for item in items:
            if isinstance(item, StreamDelete):
                normalized.append((True, item.relation, item.row, item))
            elif isinstance(item, StreamTuple):
                normalized.append((False, item.relation, item.row, None))
            else:
                relation, row = item
                normalized.append((False, relation, tuple(row), None))
        # Whole-chunk validation before any routing state advances, matching
        # ColumnarChunk.validate / validated_items semantics.
        for _, relation, row, _ in normalized:
            arity = arities.get(relation)
            if arity is None:
                raise KeyError(
                    f"relation {relation!r} is not part of query {self.query.name!r}"
                )
            if len(row) != arity:
                raise ValueError(
                    f"row arity {len(row)} does not match relation "
                    f"{relation!r} arity {arity}"
                )
        num_shards = self.num_shards
        getters = self._value_getters
        parts: List[List[Tuple[str, Tuple]]] = [[] for _ in range(num_shards)]
        for is_delete, relation, row, original in normalized:
            getter = getters.get(relation)
            payload = original if is_delete else (relation, row)
            if getter is None:
                for part in parts:
                    part.append(payload)
            else:
                parts[stable_shard_hash(getter(row)) % num_shards].append(payload)
        if count:
            deliveries = self.relation_deliveries
            for _, relation, _, _ in normalized:
                deliveries[relation] += 1
            # Mixed chunks carry retractions the rebalancing planner has no
            # move semantics for; never hand it their assignments.
            self._last_assignments = None
        return parts

    def take_last_assignments(self) -> Optional[List[int]]:
        """Stream-order shard assignments of the last delivered chunk.

        One entry per stream tuple of the chunk most recently routed through
        a delivery point (``-1`` marks a broadcast tuple), or ``None`` when
        no delivery happened since the previous take.  Consumed — cleared on
        read — so a caller can never mistake a stale chunk's routing for the
        current one.  This is how :class:`~repro.ingest.rebalance
        .RebalancingIngestor` reuses delivery-time routing during planning
        instead of re-hashing its whole window.
        """
        assignments, self._last_assignments = self._last_assignments, None
        if assignments is None:
            return None
        if hasattr(assignments, "tolist"):
            return [int(a) for a in assignments.tolist()]
        return [int(a) for a in assignments]

    # ------------------------------------------------------------------ #
    # The worker-pool runtime
    # ------------------------------------------------------------------ #
    @property
    def pool_active(self) -> bool:
        """Whether the shard replicas currently live in pool workers."""
        return self._pool is not None and self._pool.active

    @property
    def pool(self) -> Optional[ShardWorkerPool]:
        """The live worker pool, or ``None`` outside pool mode."""
        return self._pool if self.pool_active else None

    def start_pool(
        self, processes: Optional[int] = None, transport: Optional[str] = None
    ) -> ShardWorkerPool:
        """Move the live shard replicas into a persistent worker pool.

        Each worker process rebuilds its replica from a
        :func:`~repro.core.backend.snapshot_backend` record of the
        parent-side sampler — the same capability checkpoints use — so a
        pool started mid-stream (or on a checkpoint-restored ingestor)
        continues exactly where the in-process replicas stood, and a pool
        started fresh is bit-identical to a serial run under equal seeds.
        Any snapshot-capable (or picklable) replica qualifies, custom
        factories included: the built replica's *state* crosses the process
        boundary, never the factory callable.

        ``processes`` is validated (non-positive counts raise
        ``ValueError``) but otherwise advisory: shards are stateful, so the
        pool always runs exactly one worker per shard — there is no smaller
        unit a process could own.  Idempotent while a pool is live.
        """
        if processes is not None and processes <= 0:
            raise ValueError(
                f"processes must be positive, got {processes} (pass None "
                "for the one-worker-per-shard default)"
            )
        if self.pool_active:
            return self._pool
        start = time.perf_counter()
        self._pool = ShardWorkerPool(
            [
                {
                    "backend": snapshot_backend(sampler),
                    "engine": ingestor._engine.snapshot_state(),
                    "chunk_size": self.chunk_size,
                }
                for sampler, ingestor in zip(self.samplers, self.ingestors)
            ],
            transport=transport,
        )
        self.pool_startup_seconds += time.perf_counter() - start
        return self._pool

    def close_pool(self, sync: bool = True) -> None:
        """Stop the pool and return to in-process mode (idempotent).

        With ``sync=True`` (the default) the workers are drained first and
        their final replica states are adopted back into this process —
        serial ingestion, ``stored_rows`` and rebalancing then continue
        seamlessly from everything the pool ingested.  ``sync=False`` skips
        the adoption (the in-process replicas keep their pre-pool state):
        the cleanup path for a poisoned pool, or for throwaway runs that
        already extracted their merged sample.  A poisoned pool is never
        synced — its shards saw different chunk prefixes.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            if sync and pool.active and not pool.poisoned:
                records = pool.snapshots()
                self._fold_pool_accounting(pool)
                self._adopt_worker_states(records)
            else:
                pool.collect()
                self._fold_pool_accounting(pool)
        finally:
            pool.close()

    def _adopt_worker_states(self, records: List[Dict[str, object]]) -> None:
        """Rebuild the in-process replicas from worker snapshot records,
        splicing the fresh per-shard ingestors into the existing engine
        lanes so all accumulated accounting survives the transition."""
        self.samplers = [restore_backend(record["backend"]) for record in records]
        self.ingestors = [
            BatchIngestor(sampler, chunk_size=self.chunk_size)
            for sampler in self.samplers
        ]
        for ingestor, record in zip(self.ingestors, records):
            ingestor._engine.restore_state(record["engine"])
        for lane, ingestor in zip(self._engine.lanes, self.ingestors):
            lane.apply = ingestor.ingest_batch
        self._counts = None

    def _fold_pool_accounting(self, pool: Optional[ShardWorkerPool] = None) -> None:
        """Fold the pool's accounting deltas into the engine accumulators:
        per-worker busy seconds into the lane slots, completed chunks'
        (route + slowest worker) into the critical path."""
        pool = pool if pool is not None else self._pool
        if pool is None:
            return
        busy = self._engine.lane_busy_seconds
        for shard, delta in enumerate(pool.take_busy_deltas()):
            busy[shard] += delta
        self._engine.critical_path_seconds += pool.take_critical_delta()

    def _pool_ingest_batch(self, items: List) -> int:
        """One chunk through the pool: route in the parent (all-or-nothing
        validation, same hash router as serial), scatter the sub-chunks,
        advance the same engine counters the serial dispatch would."""
        tuples = len(items)
        if not tuples:
            return 0
        engine = self._engine
        start = time.perf_counter()
        parts = self._route(items)
        route_seconds = time.perf_counter() - start
        self._pool.submit(parts, route_seconds=route_seconds)
        engine.route_seconds += route_seconds
        engine.batches_ingested += 1
        engine.tuples_ingested += tuples
        for lane, part in zip(engine.lanes, parts):
            if part:
                lane.chunks_applied += 1
                lane.tuples_applied += len(part)
        # Dispatch the engine's boundary hooks (the first is the note_chunk
        # roll-up registered at construction) so pool-fed chunks fire the
        # same chunk-boundary seam as serial dispatch — epoch cuts and timer
        # checkpoints observe pool ingestion too.
        for hook in engine.after_chunk:
            hook(items, parts)
        self._fold_pool_accounting()
        return tuples

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest_batch(self, items: Sequence) -> int:
        """Partition one chunk across the shards and ingest every sub-chunk.

        Returns the number of stream tuples pushed (before broadcast
        replication).  With a live worker pool the sub-chunks are scattered
        to the workers (pipelined — the next chunk may be routed while the
        slow shard still chews); otherwise each shard lane ingests
        in-process.  Either way every shard sees the identical sub-chunk
        sequence, and after a drain point (:meth:`merged_sample` drains
        implicitly) all reservoirs are uniform over their local result sets.
        """
        if self.pool_active:
            return self._pool_ingest_batch(list(items))
        return self._engine.ingest_batch(items)

    def note_chunk(self, tuples: int, deliveries: int) -> None:
        """Record one ingested chunk's counters and invalidate count caches.

        The tail half of :meth:`ingest_batch`, exposed so transport drivers
        that route sub-chunks to the per-shard :class:`BatchIngestor` objects
        themselves (e.g. :class:`~repro.ingest.pipeline.AsyncIngestor`'s
        per-shard workers) keep this ingestor's global counters and the
        cached exact counts consistent.
        """
        self.tuples_ingested += tuples
        self.batches_ingested += 1
        self.broadcast_deliveries += deliveries - tuples
        self._counts = None

    def ingest(self, stream: Iterable[StreamTuple]) -> "ShardedIngestor":
        """Cut ``stream`` into chunks and ingest them all; returns ``self``."""
        self._engine.ingest(stream, sink=self.ingest_batch)
        return self

    def add_boundary_hook(self, hook):
        """Register ``hook(items, parts)`` to run at every chunk boundary.

        Fires for serial and pool-fed chunks alike (the pool path dispatches
        the same engine hook list), always after the counter roll-up — so a
        hook reading ``tuples_ingested`` sees the chunk already accounted.
        """
        return self._engine.add_boundary_hook(hook)

    def ingest_parallel(
        self, stream: Iterable[StreamTuple], processes: Optional[int] = None
    ) -> "ShardedIngestor":
        """Ingest ``stream`` through the persistent worker pool.

        Starts the pool on first use (:meth:`start_pool` — workers inherit
        the live replica state, so the call composes with prior serial
        ingestion) and leaves it running afterwards: further
        :meth:`ingest_batch` / ``ingest_parallel`` calls reuse the same
        workers, :meth:`merged_sample` reads the live shards at a chunk
        boundary, and :meth:`save` checkpoints *through* the workers.
        Workers consume the exact per-shard sub-chunk sequence of the
        serial path from the same replica state, so the result is
        bit-identical to :meth:`ingest` under equal seeds.  The stream is
        consumed incrementally (chunk by chunk), never materialised whole.

        ``processes`` must be positive when given (the pool itself is
        always one worker per shard); an empty stream returns immediately
        without spawning anything.  Measured wall clock accumulates in
        ``parallel_wall_seconds``.
        """
        if processes is not None and processes <= 0:
            raise ValueError(
                f"processes must be positive, got {processes} (pass None "
                "for the one-worker-per-shard default)"
            )
        iterator = iter(stream)
        try:
            first = next(iterator)
        except StopIteration:
            return self  # empty stream: no pool spawn, no counters touched
        self.start_pool(processes=processes)
        start = time.perf_counter()
        self._engine.ingest(
            itertools.chain([first], iterator), sink=self.ingest_batch
        )
        self._pool.drain()
        self.parallel_wall_seconds += time.perf_counter() - start
        self._fold_pool_accounting()
        return self

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, object]:
        """The ingestor's complete resumable state: one sub-checkpoint per
        shard lane plus the engine-level state (lane layout, partition
        attribute, counters, critical-path accounting) and both randomness
        sources (the master RNG state and the derived per-shard seeds).

        Also the ingestor's own snapshot capability, so a sharded backend
        registered into a fan-out checkpoints along with its host.
        Requires every shard replica to be snapshot-capable or picklable,
        which the default :class:`ReservoirJoin` replicas are.  With a live
        worker pool the replica states are captured *inside* the workers
        (drained first, so the cut is a chunk boundary) and shipped back —
        a checkpoint taken mid-parallel-run restores exactly like a serial
        one, through the unchanged codec.
        """
        if self.pool_active:
            records = self._pool.snapshots()
            self._fold_pool_accounting()
            shard_records = [record["backend"] for record in records]
            shard_engines = [record["engine"] for record in records]
        else:
            shard_records = [snapshot_backend(sampler) for sampler in self.samplers]
            shard_engines = [
                ingestor._engine.snapshot_state() for ingestor in self.ingestors
            ]
        return {
            "query": self.query,
            "k": self.k,
            "num_shards": self.num_shards,
            "chunk_size": self.chunk_size,
            "partition_attr": self.partition_attr,
            "shard_seeds": list(self._shard_seeds),
            "rng": self._rng.getstate(),
            "shards": shard_records,
            "shard_engines": shard_engines,
            "engine": self._engine.snapshot_state(),
            "counters": {
                "tuples_ingested": self.tuples_ingested,
                "batches_ingested": self.batches_ingested,
                "broadcast_deliveries": self.broadcast_deliveries,
                "relation_deliveries": dict(self.relation_deliveries),
            },
            "timing_incomplete": self.timing_incomplete,
            "parallel_wall_seconds": self.parallel_wall_seconds,
        }

    def save(self, path: str) -> None:
        """Write a checkpoint of :meth:`snapshot_state` (call at a chunk
        boundary)."""
        CODEC.dump(path, "sharded", self.snapshot_state())

    @classmethod
    def from_snapshot(cls, state: Dict[str, object]) -> "ShardedIngestor":
        """Rebuild an ingestor from a :meth:`snapshot_state` snapshot."""
        replicas = [restore_backend(record) for record in state["shards"]]
        ingestor = cls(
            state["query"],
            state["k"],
            num_shards=state["num_shards"],
            chunk_size=state["chunk_size"],
            partition_attr=state["partition_attr"],
            factory=lambda shard, shard_rng: replicas[shard],
            rng=random.Random(),
        )
        # The factory above returns pre-restored replicas, so the seeds the
        # constructor derived are meaningless: load the recorded seed list
        # and master-RNG state so merged_sample and any future replica
        # derivation continue the checkpointed randomness exactly.
        ingestor._shard_seeds = list(state["shard_seeds"])
        ingestor._rng.setstate(state["rng"])
        ingestor._engine.restore_state(state["engine"])
        for sub, engine_state in zip(ingestor.ingestors, state["shard_engines"]):
            sub._engine.restore_state(engine_state)
        counters = state["counters"]
        ingestor.tuples_ingested = counters["tuples_ingested"]
        ingestor.batches_ingested = counters["batches_ingested"]
        ingestor.broadcast_deliveries = counters["broadcast_deliveries"]
        ingestor.relation_deliveries = dict(counters["relation_deliveries"])
        # An async transport may have driven this ingestor barrier-less; the
        # restored instance must keep suppressing the critical-path figure.
        ingestor.timing_incomplete = state["timing_incomplete"]
        # Absent in pre-pool checkpoints, which never measured it.
        ingestor.parallel_wall_seconds = state.get("parallel_wall_seconds", 0.0)
        return ingestor

    @classmethod
    def restore(cls, path: str, num_shards: Optional[int] = None) -> "ShardedIngestor":
        """Rebuild a :meth:`save`d ingestor with its exact shard layout.

        ``num_shards`` optionally asserts the expected layout: a checkpoint
        is bound to the shard count it was written under (the hash routing
        and every shard-local reservoir depend on it), so a mismatch raises
        :class:`~repro.ingest.checkpoint.CheckpointMismatchError` — state is
        never silently rehashed into a different layout.  Re-partitioning
        is a rebalancing operation on a *live* ingestor, not a restore.
        """
        document = CODEC.load(path, expected_kind="sharded")
        state = document["state"]
        if num_shards is not None and num_shards != state["num_shards"]:
            raise CheckpointMismatchError(
                f"checkpoint was written with {state['num_shards']} shards "
                f"and cannot be restored into {num_shards}; a checkpoint is "
                "bound to its shard layout (restoring would silently rehash "
                "every partition) — restore with the saved layout, then "
                "re-partition through repro.ingest.rebalance"
            )
        return cls.from_snapshot(state)

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    def _pool_states(self) -> List[_ShardState]:
        """Fetch the merge inputs from the live workers (drains first — the
        read happens at a chunk boundary) and refresh the count cache."""
        states = []
        for shard, (sample, count, capacity, stats, _) in enumerate(
            self._pool.shard_states()
        ):
            if count is None:
                raise TypeError(
                    f"shard {shard}'s replica does not expose a dynamic "
                    "index; the sharded merge needs exact local result counts"
                )
            states.append(
                _ShardState(
                    sample,
                    count,
                    capacity if capacity is not None else self.k,
                    dict(stats),
                )
            )
        self._fold_pool_accounting()
        self._counts = [state.count for state in states]
        return states

    def _states(self) -> List[_ShardState]:
        if self.pool_active:
            return self._pool_states()
        counts = self.shard_counts()
        return [
            _ShardState(sampler.sample, counts[shard], getattr(sampler, "k", self.k))
            for shard, sampler in enumerate(self.samplers)
        ]

    def shard_samples(self) -> List[List[dict]]:
        """Every shard's reservoir, in shard order — read from the live
        workers (at a chunk boundary) in pool mode, from the in-process
        replicas otherwise.  The bit-identity probe: a pool-fed run must
        produce exactly these lists under equal seeds and chunking."""
        if self.pool_active:
            return [list(state.sample) for state in self._pool_states()]
        return [list(sampler.sample) for sampler in self.samplers]

    def shard_counts(self) -> List[int]:
        """Exact local join result counts, one per shard (cached)."""
        if self._counts is None:
            if self.pool_active:
                self._pool_states()  # refreshes the cache as a side effect
            else:
                self._counts = [
                    exact_result_count(sampler) for sampler in self.samplers
                ]
        return list(self._counts)

    def total_results(self) -> int:
        """Exact ``|Q(R)|`` of the global join (sum of disjoint shard counts)."""
        return sum(self.shard_counts())

    # ------------------------------------------------------------------ #
    # Rebalancing hooks
    # ------------------------------------------------------------------ #
    def shard_loads(self) -> List[int]:
        """Stream tuples delivered per shard so far (O(1) observability).

        In pool mode the parent-side engine lanes carry the delivery
        counters (advanced at scatter time — no worker round trip), and
        they agree exactly with what the serial dispatch would count.
        """
        if self.pool_active:
            return [lane.tuples_applied for lane in self._engine.lanes]
        return [ingestor.tuples_ingested for ingestor in self.ingestors]

    def load_imbalance(self) -> float:
        """Hottest shard's load over the mean load (1.0 = perfectly even).

        The O(1) skew signal :class:`~repro.ingest.rebalance.SkewMonitor`
        polls at chunk boundaries; loads count delivered stream tuples
        (broadcast replicas included), which is what the per-shard workers
        actually pay for.
        """
        loads = self.shard_loads()
        total = sum(loads)
        if total == 0:
            return 1.0
        return max(loads) * self.num_shards / total

    def stored_rows(self) -> Dict[str, List[tuple]]:
        """The deduplicated *global* relation state, reassembled from shards.

        For a partitioned relation every stored row lives in exactly one
        shard, so concatenating the shard-local rows (in shard order)
        re-creates the global set; broadcast relations are replicated
        identically everywhere, so shard 0's copy is the global set.  This is
        the replay source for rebalancing: re-ingesting exactly these rows
        into fresh replicas reproduces the same join state under any new
        partitioning (duplicates never reach a reservoir, so the
        deduplicated state is distribution-equivalent to the raw stream).

        Requires replicas exposing ``index.database`` (the default
        :class:`~repro.core.reservoir_join.ReservoirJoin` does).  While a
        worker pool is live the relation state resides in the worker
        processes — call :meth:`close_pool` first to adopt it back rather
        than silently shipping whole relations over IPC.
        """
        if self.pool_active:
            raise RuntimeError(
                "the shard-local relation state lives in the pool's worker "
                "processes; call close_pool() to adopt the worker state "
                "back into this process, then read stored_rows()"
            )
        rows: Dict[str, List[tuple]] = {}
        broadcast = set(self.broadcast_relations)
        for name in self.query.relation_names:
            if name in broadcast:
                rows[name] = list(self._shard_relation_rows(0, name))
            else:
                merged: List[tuple] = []
                for shard in range(self.num_shards):
                    merged.extend(self._shard_relation_rows(shard, name))
                rows[name] = merged
        return rows

    def _shard_relation_rows(self, shard: int, relation: str) -> List[tuple]:
        sampler = self.samplers[shard]
        index = getattr(sampler, "index", None)
        if index is None:
            raise TypeError(
                f"{type(sampler).__name__} does not expose a dynamic index; "
                "rebalancing needs the shard-local relation state"
            )
        return index.database[relation].rows

    def merged_sample(
        self, k: Optional[int] = None, rng: Optional[random.Random] = None
    ) -> List[dict]:
        """A uniform sample without replacement of the global join results.

        Draws ``min(k, |Q(R)|)`` results by hypergeometric allocation across
        the shard-local reservoirs followed by uniform subsampling within
        each shard (see the module docstring for the uniformity argument).
        Repeated calls draw independent merged samples from the same shard
        state.  ``k`` defaults to the constructor's ``k`` and may not exceed
        any overflowing shard's reservoir capacity.
        """
        if k is None:
            k = self.k
        if k <= 0:
            raise ValueError("merged sample size must be positive")
        rng = rng if rng is not None else self._rng
        states = self._states()
        total = sum(state.count for state in states)
        k_eff = min(k, total)
        if k_eff == 0:
            return []
        boundaries: List[int] = []
        running = 0
        for state in states:
            if state.count > state.capacity and k_eff > state.capacity:
                raise ValueError(
                    f"merged sample of size {k_eff} needs per-shard reservoir "
                    f"capacity >= {k_eff}, but a shard holding "
                    f"{state.count} results has capacity {state.capacity}"
                )
            if len(state.sample) != min(state.capacity, state.count):
                raise RuntimeError(
                    f"shard reservoir holds {len(state.sample)} results but the "
                    f"exact local count is {state.count} (capacity "
                    f"{state.capacity}); the shard sampler is not uniform over "
                    "its local join"
                )
            running += state.count
            boundaries.append(running)
        # A uniform k-subset of range(total) realises the multivariate
        # hypergeometric allocation over the disjoint shard ranges.
        allocation = [0] * len(states)
        for position in rng.sample(range(total), k_eff):
            allocation[bisect_right(boundaries, position)] += 1
        merged: List[dict] = []
        for state, take in zip(states, allocation):
            if take:
                merged.extend(rng.sample(state.sample, take))
        return merged

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, object]:
        """Ingestion counters and per-shard load — all O(1), safe per chunk.

        Deliberately excludes the exact shard result counts: those cost an
        O(N) count pass per shard when the cache is cold, which would turn
        per-chunk observability polling into quadratic total work.  Call
        :meth:`shard_counts` / :meth:`total_results` explicitly when exact
        figures are worth that price.

        With a live worker pool the figures are measured, not placeholders:
        workers time each sub-chunk and ship the busy seconds back with
        their acks, which fold into the same engine accumulators serial
        dispatch uses (``critical_path_seconds`` = per chunk, routing cost
        + slowest worker).  Mid-flight reads fold whatever acks have
        arrived; any drain point (``merged_sample``, ``snapshot_state``,
        ``ingest_parallel``'s return) makes them exact.  An async transport
        driver sets ``timing_incomplete`` — shards then run ahead of each
        other with no per-chunk barrier, so ``shard_busy_seconds`` and
        ``partition_seconds`` stay real but no critical path exists.
        """
        if self.pool_active:
            self._pool.collect()
            self._fold_pool_accounting()
        stats: Dict[str, object] = {
            "num_shards": self.num_shards,
            "partition_attr": self.partition_attr,
            "chunk_size": self.chunk_size,
            "tuples_ingested": self.tuples_ingested,
            "batches_ingested": self.batches_ingested,
            "broadcast_deliveries": self.broadcast_deliveries,
            "broadcast_relations": list(self.broadcast_relations),
            "shard_tuples": self.shard_loads(),
            "relation_deliveries": dict(self.relation_deliveries),
            "load_imbalance": round(self.load_imbalance(), 4),
            "partition_seconds": round(self.partition_seconds, 4),
            "critical_path_seconds": (
                None
                if self.timing_incomplete
                else round(self.critical_path_seconds, 4)
            ),
            "shard_busy_seconds": [round(s, 4) for s in self.shard_busy_seconds],
            "parallel": self.pool_active,
            "parallel_wall_seconds": round(self.parallel_wall_seconds, 4),
            "pool_startup_seconds": round(self.pool_startup_seconds, 4),
        }
        if self.pool_active:
            stats["pool"] = self._pool.statistics()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedIngestor({self.query.name!r}, k={self.k}, "
            f"shards={self.num_shards}, partition_attr={self.partition_attr!r})"
        )
