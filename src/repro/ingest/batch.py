"""The :class:`BatchIngestor` driver and chunking helpers.

See the package docstring for the design rationale.  The ingestor is the
simplest policy over the shared :class:`~repro.ingest.engine
.IngestionEngine`: one lane, no routing.  It is sampler agnostic — the lane's
apply callable comes from :func:`repro.core.backend.chunk_apply`, so anything
conforming to the :class:`~repro.core.backend.SamplerBackend` protocol gets
its best path probed once (``insert_batch`` fast path when present, validated
per-tuple ``insert`` fallback otherwise) and the same harness code can run
both kinds.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.backend import chunk_apply, restore_backend, snapshot_backend
from ..relational.stream import StreamTuple, chunk_stream
from .checkpoint import CODEC
from .engine import DEFAULT_CHUNK_SIZE, EngineLane, IngestionEngine

#: Alias of :func:`repro.relational.stream.chunk_stream`, the canonical
#: chunker shared by every ingestion mode (kept under its historical name).
chunked = chunk_stream


class BatchIngestor:
    """Drive a sampler with chunks of stream tuples.

    Parameters
    ----------
    sampler:
        Any sampler with an ``insert_batch(items)`` method, or — as a
        fallback — a per-tuple ``insert(relation, row)`` method.
    chunk_size:
        How many stream tuples to accumulate per ``insert_batch`` call.
        The reservoir is guaranteed uniform at every chunk boundary.

    Attributes
    ----------
    batches_ingested / tuples_ingested:
        How many chunks / stream tuples have been pushed so far (the
        underlying engine's counters).
    """

    def __init__(self, sampler, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.sampler = sampler
        apply, self._mode = chunk_apply(sampler)
        self._engine = IngestionEngine(
            [EngineLane(type(sampler).__name__, apply)], chunk_size=chunk_size
        )

    @property
    def chunk_size(self) -> int:
        return self._engine.chunk_size

    @property
    def batches_ingested(self) -> int:
        return self._engine.batches_ingested

    @property
    def tuples_ingested(self) -> int:
        return self._engine.tuples_ingested

    @property
    def uses_fast_path(self) -> bool:
        """Whether the sampler exposes a batched (or ingestor) fast path."""
        return self._mode != "insert"

    def ingest_batch(self, items: Sequence) -> int:
        """Push one chunk (``StreamTuple`` or ``(relation, row)`` items).

        Returns the number of tuples pushed.  An empty chunk is a no-op and
        does not count as a batch.
        """
        return self._engine.ingest_batch(items)

    def ingest(self, stream: Iterable[StreamTuple]) -> "BatchIngestor":
        """Cut ``stream`` into chunks and ingest them all; returns ``self``."""
        self._engine.ingest(stream)
        return self

    def add_boundary_hook(self, hook):
        """Register ``hook(items, parts)`` to run at every chunk boundary.

        Chunk boundaries are exactly where the reservoir's uniformity
        guarantee holds, so this is the attachment point for epoch cuts
        (:class:`~repro.serve.SampleServer`) and timer checkpointing
        (:class:`~repro.ingest.checkpoint.PeriodicCheckpointer`).
        """
        return self._engine.add_boundary_hook(hook)

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """The ingestor's complete resumable state: the sampler (captured
        via the :func:`~repro.core.backend.snapshot_backend` capability
        probe) plus the engine accounting.  Also the ingestor's own
        :class:`~repro.core.backend.SamplerBackend` snapshot capability, so
        a ``BatchIngestor`` nested as a fan-out backend checkpoints along
        with its host."""
        return {
            "backend": snapshot_backend(self.sampler),
            "engine": self._engine.snapshot_state(),
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "BatchIngestor":
        """Rebuild an ingestor from a :meth:`snapshot_state` snapshot."""
        ingestor = cls(
            restore_backend(state["backend"]),
            chunk_size=state["engine"]["chunk_size"],
        )
        ingestor._engine.restore_state(state["engine"])
        return ingestor

    def save(self, path: str) -> None:
        """Write a checkpoint from which :meth:`restore` resumes bit for bit.

        Call at a chunk boundary — which is everywhere except inside an
        ``ingest_batch`` call — so the restored run re-chunks the remaining
        stream exactly as an uninterrupted run would.
        """
        CODEC.dump(path, "batch", self.snapshot_state())

    @classmethod
    def restore(cls, path: str) -> "BatchIngestor":
        """Rebuild a :meth:`save`d ingestor; the stream suffix continues
        exactly where the checkpoint left off (same reservoir, same RNG
        stream, same counters)."""
        return cls.from_snapshot(CODEC.load(path, expected_kind="batch")["state"])

    def statistics(self) -> dict:
        """Ingestion counters merged with the sampler's own statistics."""
        stats = {
            "batches_ingested": self.batches_ingested,
            "tuples_ingested": self.tuples_ingested,
            "chunk_size": self.chunk_size,
            "fast_path": self.uses_fast_path,
        }
        if hasattr(self.sampler, "statistics"):
            stats.update(self.sampler.statistics())
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchIngestor({type(self.sampler).__name__}, "
            f"chunk_size={self.chunk_size}, batches={self.batches_ingested})"
        )
