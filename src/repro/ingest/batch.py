"""The :class:`BatchIngestor` driver and chunking helpers.

See the package docstring for the design rationale.  The ingestor is sampler
agnostic: anything exposing ``insert_batch(items)`` (``ReservoirJoin``,
``CyclicReservoirJoin``, the baselines) gets the batched fast path; anything
exposing only ``insert(relation, row)`` is driven tuple by tuple, so the same
harness code can run both modes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..relational.stream import StreamTuple, as_relation_rows, chunk_stream

#: Default number of stream tuples per ingested chunk.  Large enough to
#: amortise per-batch dispatch, small enough that samples stay fresh and a
#: chunk of join deltas fits comfortably in memory.
DEFAULT_CHUNK_SIZE = 1024

#: Alias of :func:`repro.relational.stream.chunk_stream`, the canonical
#: chunker shared by every ingestion mode (kept under its historical name).
chunked = chunk_stream


class BatchIngestor:
    """Drive a sampler with chunks of stream tuples.

    Parameters
    ----------
    sampler:
        Any sampler with an ``insert_batch(items)`` method, or — as a
        fallback — a per-tuple ``insert(relation, row)`` method.
    chunk_size:
        How many stream tuples to accumulate per ``insert_batch`` call.
        The reservoir is guaranteed uniform at every chunk boundary.

    Attributes
    ----------
    batches_ingested / tuples_ingested:
        How many chunks / stream tuples have been pushed so far.
    """

    def __init__(self, sampler, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        self.sampler = sampler
        self.chunk_size = chunk_size
        self.batches_ingested = 0
        self.tuples_ingested = 0
        self._insert_batch = getattr(sampler, "insert_batch", None)

    @property
    def uses_fast_path(self) -> bool:
        """Whether the sampler exposes a batched fast path."""
        return self._insert_batch is not None

    def ingest_batch(self, items: Sequence) -> int:
        """Push one chunk (``StreamTuple`` or ``(relation, row)`` items).

        Returns the number of tuples pushed.  An empty chunk is a no-op and
        does not count as a batch.
        """
        items = list(items)
        if not items:
            return 0
        if self._insert_batch is not None:
            self._insert_batch(items)
        else:
            insert = self.sampler.insert
            for relation, row in as_relation_rows(items):
                insert(relation, row)
        self.batches_ingested += 1
        self.tuples_ingested += len(items)
        return len(items)

    def ingest(self, stream: Iterable[StreamTuple]) -> "BatchIngestor":
        """Cut ``stream`` into chunks and ingest them all; returns ``self``."""
        for chunk in chunked(stream, self.chunk_size):
            self.ingest_batch(chunk)
        return self

    def statistics(self) -> dict:
        """Ingestion counters merged with the sampler's own statistics."""
        stats = {
            "batches_ingested": self.batches_ingested,
            "tuples_ingested": self.tuples_ingested,
            "chunk_size": self.chunk_size,
            "fast_path": self.uses_fast_path,
        }
        if hasattr(self.sampler, "statistics"):
            stats.update(self.sampler.statistics())
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchIngestor({type(self.sampler).__name__}, "
            f"chunk_size={self.chunk_size}, batches={self.batches_ingested})"
        )
