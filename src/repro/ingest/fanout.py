"""Multi-backend fan-out: one stream pass feeding many samplers at once.

The stream is the expensive resource — transport, decoding, chunk cutting —
not the samplers.  Yet every consumer that wants its own synopsis (a
freshness-tuned small reservoir, a big analytics reservoir, a cyclic-query
sampler, a sharded deployment, a baseline kept around for differential
checks) traditionally pays for its own pass.  :class:`FanoutIngestor` makes
the pass the shared resource: each chunk of a single
:func:`~repro.relational.stream.chunk_stream` pass is delivered to every
registered backend, and each backend maintains its reservoir exactly as if
it had consumed the stream alone.

Why each backend's sample is exactly the standalone sample
----------------------------------------------------------
Two facts make fan-out a *no-op* distribution-wise (and, under equal seeds,
bit-for-bit):

1. **Same chunk sequence.**  Delivery is broadcast: every backend receives
   the same chunks in the same order the standalone
   :class:`~repro.ingest.batch.BatchIngestor` would have produced — so each
   backend's view of the stream is *identical* to a standalone run, not
   merely equivalent.
2. **Independent derived randomness.**  Each backend built through
   :meth:`FanoutIngestor.register` is seeded by
   :func:`repro.core.backend.derive_seed` from the fan-out's master RNG (in
   registration order), and consumes only its own RNG.  Re-running the same
   factory on ``random.Random(backend_seed(name))`` over the same chunks
   reproduces the backend state bit for bit — the property the statistical
   harness asserts — and no randomness is shared across backends, so their
   samples are independent draws conditioned on the stream.

Uniformity therefore needs no new argument: it is each backend's own
chunk-boundary guarantee, unchanged.

Error isolation
---------------
Backends belong to different consumers, so one consumer's failure must not
poison the pass that feeds the others.  Two policies:

* ``on_error="raise"`` (default) — a backend failure aborts the chunk and
  poisons the fan-out (every later call re-raises), mirroring the async
  pipeline's stickiness: after a mid-chunk failure the backends have seen
  different prefixes and nothing drawn from the failed run is trustworthy.
* ``on_error="isolate"`` — the failing backend is quarantined (its first
  error is recorded, later chunks skip it) and the pass continues for the
  healthy backends, whose guarantee is untouched because their chunk
  sequence is untouched.  ``failures`` / ``statistics()`` expose what broke;
  ingestion only raises once *every* backend has failed.  Validation
  errors are gentler: a ``KeyError``/``ValueError`` is, by the
  :class:`~repro.core.backend.SamplerBackend` contract, raised by
  whole-chunk validation *before* any mutation, so the backend is intact —
  the chunk is counted as *rejected* for that backend (not delivered, not
  quarantining), and later chunks keep flowing to it.  That is what lets
  backends over different relation sets share one pass: each simply
  rejects the chunks naming relations outside its query.  (A rejecting
  backend equals a standalone run over the chunks it accepted.)

``KeyboardInterrupt`` and other non-``Exception`` interrupts always
propagate — isolation never swallows a user abort.

Composition: a backend may itself be a
:class:`~repro.ingest.shard.ShardedIngestor` (the capability probe prefers
``ingest_batch``), and the fan-out itself exposes ``ingest_batch``, so it
can sit behind an :class:`~repro.ingest.pipeline.AsyncIngestor` transport or
inside another fan-out.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.backend import chunk_apply, derive_seed, restore_backend, snapshot_backend
from ..relational.stream import StreamTuple
from .checkpoint import CODEC
from .engine import DEFAULT_CHUNK_SIZE, SKIPPED, EngineLane, IngestionEngine


class _BackendRecord:
    """One registered backend: identity, capability, failure accounting."""

    __slots__ = ("name", "backend", "seed", "apply", "mode", "prevalidates",
                 "error", "chunks_rejected")

    def __init__(self, name: str, backend, seed: Optional[int]) -> None:
        self.name = name
        self.backend = backend
        self.seed = seed
        self.apply, self.mode = chunk_apply(backend)
        # Whether a KeyError/ValueError from apply is guaranteed to precede
        # any mutation: true for the bulk/ingestor contract paths, and for
        # the per-tuple fallback only when the backend exposes its query
        # (then chunk_apply validates the whole chunk up front).
        self.prevalidates = self.mode != "insert" or (
            getattr(backend, "original_query", None)
            or getattr(backend, "query", None)
        ) is not None
        self.error: Optional[Exception] = None
        self.chunks_rejected = 0


class FanoutIngestor:
    """Deliver every chunk of one stream pass to ``M`` registered backends.

    Parameters
    ----------
    chunk_size:
        Stream tuples per delivered chunk; every backend's uniformity
        guarantee holds at each chunk boundary, exactly as standalone.
    rng:
        Master randomness source; :meth:`register` derives one independent
        seed per backend from it (in registration order).
    on_error:
        ``"raise"`` (default) or ``"isolate"`` — see the module docstring.

    Attributes
    ----------
    batches_ingested / tuples_ingested:
        Chunks / stream tuples delivered so far (counted once, before the
        ``M``-way replication).
    critical_path_seconds:
        Per chunk, the slowest backend's application time (plus the
        negligible broadcast cost) — backends share no state, so this is
        the wall clock of a one-worker-per-backend deployment, the honest
        scale-out figure next to which benchmarks report the single-thread
        serial total.
    """

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        rng: Optional[random.Random] = None,
        on_error: str = "raise",
    ) -> None:
        if on_error not in ("raise", "isolate"):
            raise ValueError("on_error must be 'raise' or 'isolate'")
        self._rng = rng if rng is not None else random.Random()
        self.on_error = on_error
        self._records: Dict[str, _BackendRecord] = {}
        self._order: List[str] = []
        self._started = False
        self._poisoned: Optional[Exception] = None
        self._engine = IngestionEngine([], chunk_size=chunk_size)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, factory: Callable[[random.Random], object]):
        """Build and register a backend from ``factory(rng)`` with a derived seed.

        The factory receives a fresh ``random.Random`` seeded by
        :func:`~repro.core.backend.derive_seed` from the master RNG; the
        seed is recorded (:meth:`backend_seed`) so a standalone rerun can
        reproduce the backend bit for bit.  Returns the built backend.
        Registration order determines the seed sequence (admissibility is
        checked *before* the seed is drawn, so a rejected registration
        never shifts later backends' seeds), and registering after
        ingestion has begun raises — late backends would see a truncated
        stream and silently break the standalone equivalence.
        """
        self._check_admissible(name)
        seed = derive_seed(self._rng)
        return self._admit(name, factory(random.Random(seed)), seed)

    def register_replica(self, name: str, prototype):
        """Register a fresh replica of ``prototype`` via its ``spawn`` capability.

        The replica-cloning path of the :class:`~repro.core.backend
        .SamplerBackend` protocol: ``prototype.spawn(rng)`` builds an empty,
        identically configured sampler, here driven by a derived seed that
        is recorded exactly as for :meth:`register` — so several fan-out
        backends can share one configuration without repeating factory
        lambdas.  The prototype itself is never ingested into or mutated.
        Returns the replica.
        """
        spawn = getattr(prototype, "spawn", None)
        if not callable(spawn):
            raise TypeError(
                f"{type(prototype).__name__} does not expose the spawn() "
                "replica-cloning capability"
            )
        self._check_admissible(name)
        seed = derive_seed(self._rng)
        return self._admit(name, spawn(random.Random(seed)), seed)

    def add(self, name: str, backend):
        """Register a pre-built backend (no seed bookkeeping).

        For backends whose randomness the caller manages — a
        :class:`~repro.ingest.shard.ShardedIngestor` built with an explicit
        RNG, a deterministic consumer.  :meth:`backend_seed` returns
        ``None`` for these; the delivery guarantee (same chunks, same
        order) holds regardless.  Returns the backend.
        """
        return self._admit(name, backend, None)

    def _check_admissible(self, name: str) -> None:
        """Reject a registration before any seed is drawn or factory run."""
        if self._started:
            raise RuntimeError(
                "cannot register a backend after ingestion has begun; "
                "it would see a truncated stream"
            )
        if name in self._records:
            raise ValueError(f"backend {name!r} is already registered")

    def _admit(self, name: str, backend, seed: Optional[int]):
        self._check_admissible(name)
        record = _BackendRecord(name, backend, seed)
        self._records[name] = record
        self._order.append(name)
        self._engine.add_lane(EngineLane(name, self._lane_apply(record)))
        return backend

    def _lane_apply(self, record: _BackendRecord) -> Callable[[Sequence], object]:
        def apply(items: Sequence):
            if record.error is not None:
                return SKIPPED  # quarantined: healthy lanes keep their sequence
            try:
                record.apply(items)
            except (KeyError, ValueError) as error:
                if not record.prevalidates:
                    # A query-less per-tuple backend has no pre-mutation
                    # guarantee — the loop may have half-fed it, so this
                    # is a real failure, not a clean rejection.
                    record.error = error
                    if self.on_error == "raise":
                        self._poisoned = error
                        raise
                    return SKIPPED
                # Whole-chunk validation rejection — raised before any
                # mutation by the SamplerBackend contract, so the backend
                # is intact: count the rejection, keep delivering.  (A
                # non-conforming backend that raises these mid-mutation is
                # mis-classified; pre-mutation validation is part of the
                # protocol third-party backends are expected to honour.)
                record.chunks_rejected += 1
                if self.on_error == "raise":
                    self._poisoned = error
                    raise
                return SKIPPED
            except Exception as error:
                # A real backend failure (KeyboardInterrupt and friends
                # deliberately propagate — isolation never eats an abort).
                record.error = error
                if self.on_error == "raise":
                    self._poisoned = error
                    raise
                return SKIPPED
            return None

        return apply

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def backend_names(self) -> List[str]:
        """Registered backend names, in registration (= seed) order."""
        return list(self._order)

    @property
    def backends(self) -> Dict[str, object]:
        """Name → backend, in registration order."""
        return {name: self._records[name].backend for name in self._order}

    def backend(self, name: str):
        """The registered backend called ``name`` (``KeyError`` if absent)."""
        return self._records[name].backend

    def backend_seed(self, name: str) -> Optional[int]:
        """The derived seed ``name`` was built with (``None`` for :meth:`add`)."""
        return self._records[name].seed

    @property
    def failures(self) -> Dict[str, Exception]:
        """Name → first error, for every failed backend."""
        return {
            name: self._records[name].error
            for name in self._order
            if self._records[name].error is not None
        }

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    @property
    def batches_ingested(self) -> int:
        return self._engine.batches_ingested

    @property
    def tuples_ingested(self) -> int:
        return self._engine.tuples_ingested

    @property
    def chunk_size(self) -> int:
        return self._engine.chunk_size

    @property
    def critical_path_seconds(self) -> float:
        return self._engine.critical_path_seconds

    def ingest_batch(self, items: Sequence) -> int:
        """Deliver one chunk to every (healthy) backend.

        Returns the number of stream tuples in the chunk.  An empty chunk
        is a no-op.  A poisoned fan-out re-raises its sticky failure; in
        isolation mode a chunk that finds every backend quarantined raises
        ``RuntimeError`` instead of silently draining the stream.
        """
        if self._poisoned is not None:
            raise self._poisoned
        if not self._records:
            raise RuntimeError("no backends registered")
        if all(record.error is not None for record in self._records.values()):
            raise RuntimeError("every fan-out backend has failed")
        pushed = self._engine.ingest_batch(items)
        if pushed:
            self._started = True
        return pushed

    def ingest(self, stream: Iterable[StreamTuple]) -> "FanoutIngestor":
        """Cut ``stream`` into chunks and deliver them all; returns ``self``."""
        self._engine.ingest(stream, sink=self.ingest_batch)
        return self

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, object]:
        """The fan-out's complete resumable state: one sub-checkpoint per
        registered backend (in registration order, each keyed by its name
        and recorded :meth:`backend_seed`), the master RNG state, and the
        engine-level delivery accounting.

        Every backend must be healthy: after a failure the failed backend's
        state may be mid-chunk and the healthy backends have seen a
        different prefix than it has, so nothing resumable exists —
        ``RuntimeError``.  Also the fan-out's own snapshot capability, so a
        fan-out nested inside another fan-out checkpoints along with its
        host.
        """
        if self._poisoned is not None or any(
            record.error is not None for record in self._records.values()
        ):
            failed = [
                name for name in self._order if self._records[name].error is not None
            ]
            raise RuntimeError(
                f"cannot checkpoint a fan-out with failed backends {failed}; "
                "a checkpoint must capture a consistent chunk boundary"
            )
        return {
            "chunk_size": self.chunk_size,
            "on_error": self.on_error,
            "rng": self._rng.getstate(),
            "started": self._started,
            "engine": self._engine.snapshot_state(),
            "backends": [
                {
                    "name": name,
                    "seed": self._records[name].seed,
                    "chunks_rejected": self._records[name].chunks_rejected,
                    "snapshot": snapshot_backend(self._records[name].backend),
                }
                for name in self._order
            ],
        }

    def save(self, path: str) -> None:
        """Write a checkpoint of :meth:`snapshot_state` (call at a chunk
        boundary)."""
        CODEC.dump(path, "fanout", self.snapshot_state())

    @classmethod
    def from_snapshot(cls, state: Dict[str, object]) -> "FanoutIngestor":
        """Rebuild a fan-out from a :meth:`snapshot_state` snapshot.

        Each backend is rebuilt from its sub-checkpoint and re-admitted
        under its recorded name and derived seed, so :meth:`backend_seed`
        keeps certifying standalone reproducibility and the master RNG
        continues exactly where the checkpoint left it (later
        registrations would draw the seeds an uninterrupted run would have
        drawn).
        """
        fan = cls(
            chunk_size=state["chunk_size"],
            rng=random.Random(),
            on_error=state["on_error"],
        )
        fan._rng.setstate(state["rng"])
        for entry in state["backends"]:
            fan._admit(entry["name"], restore_backend(entry["snapshot"]), entry["seed"])
            fan._records[entry["name"]].chunks_rejected = entry["chunks_rejected"]
        fan._engine.restore_state(state["engine"])
        fan._started = state["started"]
        return fan

    @classmethod
    def restore(cls, path: str) -> "FanoutIngestor":
        """Rebuild a :meth:`save`d fan-out with every backend re-registered."""
        return cls.from_snapshot(CODEC.load(path, expected_kind="fanout")["state"])

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, object]:
        """Delivery counters plus one nested entry per backend.

        Per backend: the probed delivery ``mode``, busy seconds, delivered
        chunk/tuple counts (real deliveries only — quarantined and rejected
        chunks are excluded by the engine's skip accounting), rejected-chunk
        count, the recorded failure (``repr``) if any, and the backend's own
        ``statistics()`` when it exposes them.
        """
        busy = self._engine.lane_busy_seconds
        per_backend: Dict[str, Dict[str, object]] = {}
        for position, name in enumerate(self._order):
            record = self._records[name]
            lane = self._engine.lanes[position]
            entry: Dict[str, object] = {
                "mode": record.mode,
                "busy_seconds": round(busy[position], 4),
                "chunks_delivered": lane.chunks_applied,
                "tuples_delivered": lane.tuples_applied,
                "chunks_rejected": record.chunks_rejected,
            }
            if record.error is not None:
                entry["failed"] = repr(record.error)
            if hasattr(record.backend, "statistics"):
                entry["statistics"] = dict(record.backend.statistics())
            per_backend[name] = entry
        return {
            "num_backends": len(self._order),
            "backends": per_backend,
            "batches_ingested": self.batches_ingested,
            "tuples_ingested": self.tuples_ingested,
            "chunk_size": self.chunk_size,
            "on_error": self.on_error,
            "broadcast_seconds": round(self._engine.route_seconds, 4),
            "critical_path_seconds": round(self.critical_path_seconds, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FanoutIngestor(backends={self._order!r}, "
            f"chunk_size={self.chunk_size}, batches={self.batches_ingested})"
        )


__all__ = ["FanoutIngestor"]
