"""The :class:`IngestionEngine`: one chunk-dispatch loop for every ingestor.

Historically each ingestion mode re-implemented the same skeleton — cut the
stream into chunks, hand each chunk to one or more delivery targets, time
the dispatch honestly, keep counters — with small policy differences
(how a chunk is split across targets, what happens at a chunk boundary).
This module extracts that skeleton once.  The public ingestors are now thin
policies over it:

* :class:`~repro.ingest.batch.BatchIngestor` — one lane, no routing;
* :class:`~repro.ingest.shard.ShardedIngestor` — one lane per shard, a
  hash-partitioning router;
* :class:`~repro.ingest.fanout.FanoutIngestor` — one lane per registered
  backend, broadcast routing (every lane sees every chunk);
* :class:`~repro.ingest.rebalance.RebalancingIngestor` and
  :class:`~repro.ingest.pipeline.AsyncIngestor` stack *on top* of
  engine-backed ingestors (a chunk-boundary policy and a transport,
  respectively) instead of forming parallel class hierarchies.

Anatomy of one ``ingest_batch`` call
------------------------------------
1. **Route** — the chunk is materialised and split into per-lane parts by
   the ``router`` (identity for a single lane, hash partitioning for
   shards, broadcast for fan-out).  A routing policy that validates (the
   sharded hash router validates the whole chunk) raises here, *before*
   any lane mutates — all-or-nothing.  Routerless policies delegate
   whole-chunk validation to each backend's own pre-mutation contract
   (``insert_batch`` validates before mutating; the probed per-tuple
   fallback of :func:`repro.core.backend.chunk_apply` validates against
   the backend's query when it exposes one).
2. **Dispatch** — each non-empty part is applied to its lane, timed
   individually.  A lane's apply may return :data:`SKIPPED` to signal it
   deliberately absorbed nothing (a quarantined fan-out backend); skipped
   deliveries are excluded from the lane's counters and timing.
3. **Account** — the engine accumulates the routing cost
   (``route_seconds``), each lane's busy time (``lane_busy_seconds``, a
   live list that transport drivers may also write into), and the
   *critical path*: per chunk, routing cost plus the **slowest** lane.
   Lanes share no mutable state, so that sum is the wall clock of a
   one-worker-per-lane deployment — the honest scale-out figure a
   single-core box can still measure.
4. **Hooks** — ``after_chunk(items, parts)`` callbacks run at the chunk
   boundary (where the uniformity guarantee holds): counter roll-ups,
   skew monitoring, cache invalidation.

Error semantics: an exception raised while routing leaves every lane
untouched; an exception raised by a lane's ``apply`` aborts the dispatch
loop mid-chunk (earlier lanes have absorbed the part, later ones have not)
and no boundary hook runs.  Policies that must survive a lane failure wrap
their ``apply`` callables (fan-out's isolation mode) or poison the whole
pipeline (the async transport); the engine itself never hides a failure.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Sequence

from ..relational.stream import chunk_stream

#: Default number of stream tuples per ingested chunk.  Large enough to
#: amortise per-batch dispatch, small enough that samples stay fresh and a
#: chunk of join deltas fits comfortably in memory.
DEFAULT_CHUNK_SIZE = 1024

#: Sentinel a lane's ``apply`` may return to signal that it deliberately
#: absorbed nothing (e.g. delivery to a quarantined fan-out backend).  The
#: engine then leaves the lane's counters, busy time and the chunk's
#: critical path untouched — the lane did no work and must not report any.
SKIPPED = object()


class EngineLane:
    """One delivery target of an :class:`IngestionEngine`.

    ``apply`` takes one chunk part and absorbs it whole — typically a bound
    ``BatchIngestor.ingest_batch``, a sampler's ``insert_batch``, or the
    probed fallback from :func:`repro.core.backend.chunk_apply`.  It may
    return :data:`SKIPPED` to tell the engine the delivery was a deliberate
    no-op; ``chunks_applied`` / ``tuples_applied`` count only real
    deliveries.
    """

    __slots__ = ("name", "apply", "chunks_applied", "tuples_applied")

    def __init__(self, name: str, apply: Callable[[Sequence], object]) -> None:
        self.name = name
        self.apply = apply
        self.chunks_applied = 0
        self.tuples_applied = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EngineLane({self.name!r}, chunks={self.chunks_applied})"


class IngestionEngine:
    """Chunked dispatch across lanes with honest critical-path accounting.

    Parameters
    ----------
    lanes:
        The delivery targets, in routing order.
    chunk_size:
        How many stream tuples :meth:`ingest` cuts per chunk.  The
        uniformity guarantee of every backend holds at chunk boundaries.
    router:
        ``router(items) -> List[parts]`` splitting one chunk into per-lane
        parts (``len(parts) == len(lanes)``; empty parts are skipped).
        ``None`` broadcasts: every lane receives the whole chunk — which
        for a single lane is plain pass-through.  The router runs before
        any lane is touched, so it is also the whole-chunk validation
        point.
    after_chunk:
        Callbacks ``hook(items, parts)`` run after every successfully
        dispatched chunk — the chunk boundary.

    Attributes
    ----------
    batches_ingested / tuples_ingested:
        Chunks / stream tuples dispatched so far (tuples counted once,
        before any broadcast replication by the router).
    route_seconds / critical_path_seconds / lane_busy_seconds:
        The accounting described in the module docstring.
        ``lane_busy_seconds`` is a live, mutable list indexed like
        ``lanes`` — transport drivers that bypass :meth:`ingest_batch`
        (the async workers) add their own lane timings into it.
    """

    def __init__(
        self,
        lanes: Iterable[EngineLane],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        router: Optional[Callable[[List], List[List]]] = None,
        after_chunk: Iterable[Callable[[List, List[List]], None]] = (),
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        self.lanes: List[EngineLane] = list(lanes)
        self.chunk_size = chunk_size
        self.router = router
        self.after_chunk: List[Callable] = list(after_chunk)
        self.batches_ingested = 0
        self.tuples_ingested = 0
        self.route_seconds = 0.0
        self.critical_path_seconds = 0.0
        self.lane_busy_seconds: List[float] = [0.0] * len(self.lanes)

    # ------------------------------------------------------------------ #
    # Lane management
    # ------------------------------------------------------------------ #
    def add_lane(self, lane: EngineLane) -> EngineLane:
        """Append a lane (only meaningful before ingestion starts)."""
        self.lanes.append(lane)
        self.lane_busy_seconds.append(0.0)
        return lane

    # ------------------------------------------------------------------ #
    # Boundary hooks
    # ------------------------------------------------------------------ #
    def add_boundary_hook(
        self, hook: Callable[[List, List[List]], None]
    ) -> Callable[[List, List[List]], None]:
        """Register ``hook(items, parts)`` to run at every chunk boundary.

        The public registration point for everything that must observe the
        stream exactly where the uniformity guarantee holds: the serving
        layer's epoch cuts, timer-based background checkpointing, skew
        monitors.  Hooks run in registration order, after the chunk has been
        fully dispatched; a hook that raises aborts the ``ingest_batch``
        call (the chunk itself is already absorbed).  Returns ``hook`` so it
        can be registered inline.
        """
        self.after_chunk.append(hook)
        return hook

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def ingest_batch(self, items: Sequence) -> int:
        """Route one chunk across the lanes and apply every non-empty part.

        Returns the number of stream tuples dispatched (before any
        broadcast replication).  An empty chunk is a no-op and does not
        count as a batch.  On return every lane sits at a chunk boundary.
        """
        items = list(items)
        # Snapshot the size before dispatch: a backend may legally consume
        # its part destructively, and counters/return value must describe
        # what was delivered, not what the backend left behind.
        tuples = len(items)
        if not tuples:
            return 0
        start = time.perf_counter()
        if self.router is not None:
            parts = self.router(items)
        elif len(self.lanes) == 1:
            parts = [items]
        else:
            # Broadcast: each lane gets its own shallow copy, so a backend
            # that consumes its argument destructively cannot corrupt the
            # delivery to later lanes (bit-identity depends on every lane
            # seeing the full chunk).
            parts = [list(items) for _ in self.lanes]
        route_seconds = time.perf_counter() - start
        slowest = 0.0
        busy = self.lane_busy_seconds
        for position, (lane, part) in enumerate(zip(self.lanes, parts)):
            part_tuples = len(part)
            if not part_tuples:
                continue
            start = time.perf_counter()
            outcome = lane.apply(part)
            elapsed = time.perf_counter() - start
            if outcome is SKIPPED:
                continue
            busy[position] += elapsed
            lane.chunks_applied += 1
            lane.tuples_applied += part_tuples
            if elapsed > slowest:
                slowest = elapsed
        self.route_seconds += route_seconds
        self.critical_path_seconds += route_seconds + slowest
        self.batches_ingested += 1
        self.tuples_ingested += tuples
        for hook in self.after_chunk:
            hook(items, parts)
        return tuples

    def ingest(self, stream: Iterable, sink: Optional[Callable[[List], int]] = None) -> "IngestionEngine":
        """Cut ``stream`` into chunks and push them all through ``sink``.

        ``sink`` defaults to :meth:`ingest_batch`; policies with their own
        per-chunk guard or bookkeeping (the sharded frozen check, the
        rebalancing boundary hook) pass their public ``ingest_batch`` so a
        flat-stream ingest is exactly a loop of it.
        """
        push = sink if sink is not None else self.ingest_batch
        for chunk in chunk_stream(stream, self.chunk_size):
            push(chunk)
        return self

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """The engine's resumable accounting: chunk counters, lane layout,
        per-lane delivery counters, and the timing accumulators (the
        critical path included).  Lane ``apply`` callables are *not*
        captured — a restore rebuilds the lanes from restored backends and
        then loads this state on top.
        """
        return {
            "chunk_size": self.chunk_size,
            "batches_ingested": self.batches_ingested,
            "tuples_ingested": self.tuples_ingested,
            "route_seconds": self.route_seconds,
            "critical_path_seconds": self.critical_path_seconds,
            "lane_busy_seconds": list(self.lane_busy_seconds),
            "lanes": [
                {
                    "name": lane.name,
                    "chunks_applied": lane.chunks_applied,
                    "tuples_applied": lane.tuples_applied,
                }
                for lane in self.lanes
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_state` snapshot into this engine.

        The lane layout must match the snapshot (same count — the lanes
        were rebuilt from the same checkpoint), otherwise ``ValueError``.
        """
        if len(state["lanes"]) != len(self.lanes):
            raise ValueError(
                f"engine snapshot has {len(state['lanes'])} lanes, but this "
                f"engine has {len(self.lanes)}"
            )
        self.chunk_size = state["chunk_size"]
        self.batches_ingested = state["batches_ingested"]
        self.tuples_ingested = state["tuples_ingested"]
        self.route_seconds = state["route_seconds"]
        self.critical_path_seconds = state["critical_path_seconds"]
        self.lane_busy_seconds[:] = state["lane_busy_seconds"]
        for lane, entry in zip(self.lanes, state["lanes"]):
            lane.chunks_applied = entry["chunks_applied"]
            lane.tuples_applied = entry["tuples_applied"]

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> dict:
        """The engine's own counters (policies merge these with their own)."""
        return {
            "batches_ingested": self.batches_ingested,
            "tuples_ingested": self.tuples_ingested,
            "chunk_size": self.chunk_size,
            "lanes": len(self.lanes),
            "route_seconds": round(self.route_seconds, 4),
            "critical_path_seconds": round(self.critical_path_seconds, 4),
            "lane_busy_seconds": [round(s, 4) for s in self.lane_busy_seconds],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestionEngine(lanes={len(self.lanes)}, "
            f"chunk_size={self.chunk_size}, batches={self.batches_ingested})"
        )


__all__ = ["DEFAULT_CHUNK_SIZE", "SKIPPED", "EngineLane", "IngestionEngine"]
