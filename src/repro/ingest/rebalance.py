"""Skew-aware shard rebalancing for the sharded ingestion seam.

Hash partitioning is only as good as the value distribution it is handed:
one hot join value (a celebrity node, a best-selling item) routes a
disproportionate share of the stream — and a superlinear share of the join
work — to a single shard, and the chunk-boundary barrier makes every chunk
as slow as that hottest shard.  This module closes the loop the ROADMAP
left open: it *watches* the O(1) per-shard load counters the
:class:`~repro.ingest.shard.ShardedIngestor` already exposes, *detects* a
hot partition against a configurable imbalance threshold, and *rebalances*
by re-partitioning on a better attribute and/or splitting the shard set,
replaying the shard-local relation state into fresh replicas.

Why the replay preserves the distributional contract
----------------------------------------------------
The property harness's invariant — *sharded ≡ unsharded,
distribution-wise, at every chunk boundary* — survives a rebalance because
of three facts:

1. **The stored state is stream-equivalent.**  Duplicate stream tuples
   never reach a reservoir (the dynamic index drops them before delta
   generation), so the deduplicated union of shard-local relation states
   (:meth:`~repro.ingest.shard.ShardedIngestor.stored_rows`) induces
   exactly the join-result set of the original stream prefix.
2. **Fresh replicas, derived seeds.**  The replay drives that state —
   chunked like any other stream — into a *new* :class:`ShardedIngestor`
   whose replicas are fresh reservoirs seeded from the master RNG.  By the
   per-sampler guarantee each new shard reservoir is uniform over its local
   result set at every replay chunk boundary; the old reservoirs are
   discarded, so no stale inclusion probabilities leak through.
3. **The merge argument is partition-agnostic.**  Exact-count-weighted
   subsampling (:meth:`~repro.ingest.shard.ShardedIngestor.merged_sample`)
   is uniform for *any* partitioning of the result set — it never cared
   which attribute did the partitioning.

So after a rebalance the merged sample is exactly uniform over the same
global result set as before, and subsequent chunks extend the same
guarantee under the new, cooler partitioning.

Choosing the new partitioning
-----------------------------
:func:`plan_partition` scores every candidate ``(attribute, shard_count)``
pair against a *window of recently delivered stream tuples* — duplicates
included, because per-chunk shard work is paid per delivery, not per
distinct row, and hot values are hot precisely because they repeat.
Relations containing the attribute are hash-simulated onto shards with the
real router's hash, the rest are broadcast to every shard, and the plan's
cost is its hottest shard's delivery count.  Re-partitioning onto a
uniformly distributed attribute fixes single-hot-value skew; doubling the
shard count ("splitting") fixes several warm values that merely collide
under the current modulus.  A plan is only adopted when it beats the
same-window simulation of the *current* partitioning by a configurable
margin, so a stream that is merely noisy never thrashes.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.backend import derive_seed
from ..relational.query import JoinQuery
from ..relational.schema import tuple_getter
from ..relational.stream import (
    ColumnarChunk,
    StreamTuple,
    as_relation_rows,
    chunk_stream,
    numpy_or_none,
)
from .batch import DEFAULT_CHUNK_SIZE
from .checkpoint import CODEC
from .shard import DEFAULT_NUM_SHARDS, ShardedIngestor, route_rows

#: Hottest-shard load over mean load beyond which a partitioning counts as
#: skewed.  1.5 means "the hot shard does 50% more work than average".
DEFAULT_IMBALANCE_THRESHOLD = 1.5

#: A candidate plan must cut the simulated hottest-shard cost to at most
#: this fraction of the current partitioning's simulated cost.
DEFAULT_IMPROVEMENT_FACTOR = 0.8


@dataclass(frozen=True)
class SkewReport:
    """One skew-monitor observation of a sharded ingestor."""

    shard_loads: Tuple[int, ...]
    imbalance: float
    hot_shard: int
    threshold: float
    triggered: bool


@dataclass(frozen=True)
class RebalancePlan:
    """A scored candidate partitioning, simulated over the stored rows."""

    partition_attr: str
    num_shards: int
    predicted_loads: Tuple[float, ...]

    @property
    def max_load(self) -> float:
        """Simulated hottest-shard load — the plan's cost."""
        return max(self.predicted_loads) if self.predicted_loads else 0.0

    @property
    def total_load(self) -> float:
        """Simulated load across all shards (broadcast included)."""
        return sum(self.predicted_loads)

    @property
    def predicted_imbalance(self) -> float:
        total = self.total_load
        if total == 0:
            return 1.0
        return self.max_load * self.num_shards / total


@dataclass(frozen=True)
class RebalanceEvent:
    """A completed rebalance: what triggered it, what it chose, what it cost."""

    at_tuples: int
    observed_imbalance: float
    old_attr: str
    new_attr: str
    old_shards: int
    new_shards: int
    predicted_imbalance: float
    replayed_tuples: int
    plan_seconds: float
    replay_seconds: float


class SkewMonitor:
    """Detect hot partitions from the O(1) per-shard load counters.

    Parameters
    ----------
    threshold:
        Load imbalance (hottest shard / mean) at or above which a
        partitioning counts as skewed.  Must exceed 1.0 — an imbalance of
        exactly 1.0 is a perfectly even split.
    min_tuples:
        Do not trigger before this many stream tuples have been ingested;
        early chunks are all noise.
    cooldown_chunks:
        After a planning episode — whether it rebalanced or rejected every
        candidate — wait this many ingested chunks before planning again,
        so one burst cannot cause thrash and *inherent* skew (no cooler
        partitioning exists) does not pay the O(window) simulation on
        every chunk forever.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_IMBALANCE_THRESHOLD,
        min_tuples: int = 4096,
        cooldown_chunks: int = 4,
    ) -> None:
        if threshold <= 1.0:
            raise ValueError("imbalance threshold must exceed 1.0")
        if min_tuples < 0:
            raise ValueError("min_tuples must be non-negative")
        if cooldown_chunks < 0:
            raise ValueError("cooldown_chunks must be non-negative")
        self.threshold = threshold
        self.min_tuples = min_tuples
        self.cooldown_chunks = cooldown_chunks

    def report(
        self, ingestor: ShardedIngestor, stream_tuples: Optional[int] = None
    ) -> SkewReport:
        """Observe ``ingestor`` (O(1): reads the per-shard load counters).

        ``stream_tuples`` is the tuple count the ``min_tuples`` guard is
        held against; it defaults to the ingestor's own counter, but a
        wrapper whose inner ingestor restarts (rebalancing replays reset
        the per-generation counter to the replayed row count) passes its
        cumulative stream figure instead.
        """
        loads = tuple(ingestor.shard_loads())
        imbalance = ingestor.load_imbalance()
        hot = max(range(len(loads)), key=loads.__getitem__) if loads else 0
        if stream_tuples is None:
            stream_tuples = ingestor.tuples_ingested
        triggered = stream_tuples >= self.min_tuples and imbalance >= self.threshold
        return SkewReport(loads, imbalance, hot, self.threshold, triggered)


def simulate_partition(
    query: JoinQuery,
    deliveries: Iterable,
    partition_attr: str,
    num_shards: int,
) -> RebalancePlan:
    """Predict per-shard loads if ``deliveries`` were partitioned so.

    ``deliveries`` is a sample of *delivered* stream tuples
    (:class:`~repro.relational.stream.StreamTuple` or ``(relation, row)``
    pairs), duplicates included — per-chunk shard work is paid per delivery,
    and hot values are hot precisely because they repeat, so simulating over
    deduplicated stored state would systematically underrate them.  Tuples
    of relations containing ``partition_attr`` are routed with the real
    router's stable hash; the rest are broadcast, adding one delivery to
    every shard.  O(sample size), paid only when the monitor has already
    flagged skew.
    """
    return _simulate(query, deliveries, partition_attr, num_shards)


def _simulate(
    query: JoinQuery,
    items,
    partition_attr: str,
    num_shards: int,
) -> RebalancePlan:
    """:func:`simulate_partition` over a chunk (or anything chunkable).

    Routes through the same :func:`~repro.ingest.shard.route_rows` rule the
    live router uses — vectorized hashing included, and by construction
    incapable of predicting a shard the router would not pick.  Passing an
    already-built :class:`ColumnarChunk` lets the planner score many
    candidate attributes against one pivot (and one per-attribute column
    cache).
    """
    chunk = items if isinstance(items, ColumnarChunk) else ColumnarChunk.from_items(items)
    getters: Dict[str, object] = {}
    positions: Dict[str, int] = {}
    for schema in query.relations:
        if partition_attr in schema.attr_set:
            attr_positions = schema.positions_of((partition_attr,))
            getters[schema.name] = tuple_getter(attr_positions)
            positions[schema.name] = attr_positions[0]
    assignments = route_rows(chunk, getters, num_shards, positions)
    np = numpy_or_none()
    if np is not None and isinstance(assignments, np.ndarray):
        broadcast = int((assignments < 0).sum())
        owned = np.bincount(assignments[assignments >= 0], minlength=num_shards)
        loads = [int(load) + broadcast for load in owned.tolist()]
    else:
        loads = [0] * num_shards
        broadcast = 0
        for assignment in assignments:
            if assignment < 0:
                broadcast += 1
            else:
                loads[assignment] += 1
        loads = [load + broadcast for load in loads]
    return RebalancePlan(partition_attr, num_shards, tuple(loads))


def plan_partition(
    query: JoinQuery,
    deliveries: Sequence,
    candidate_attrs: Optional[Iterable[str]] = None,
    shard_counts: Sequence[int] = (DEFAULT_NUM_SHARDS,),
) -> RebalancePlan:
    """The cheapest candidate partitioning of a delivery sample.

    Scores every ``(attribute, shard_count)`` combination with
    :func:`simulate_partition` and returns the plan with the smallest
    hottest-shard load, breaking ties towards fewer total deliveries (less
    broadcast replication), then fewer shards, then canonical attribute
    order — so the choice is deterministic.
    """
    candidates = tuple(candidate_attrs) if candidate_attrs else query.output_attrs()
    if not candidates:
        raise ValueError("no candidate partition attributes")
    chunk = ColumnarChunk.from_items(deliveries)  # pivot once, simulate many
    plans = [
        _simulate(query, chunk, attr, shards)
        for attr in sorted(candidates)
        for shards in shard_counts
    ]
    return min(
        plans,
        key=lambda plan: (
            plan.max_load,
            plan.total_load,
            plan.num_shards,
            plan.partition_attr,
        ),
    )


class RebalancingIngestor:
    """A :class:`ShardedIngestor` that re-partitions itself when a shard runs hot.

    Drives an inner sharded ingestor chunk by chunk; at every chunk boundary
    a :class:`SkewMonitor` inspects the O(1) per-shard loads, and when a hot
    partition is flagged the ingestor simulates candidate partitionings over
    the stored relation state, picks the coolest (see :func:`plan_partition`)
    and — if it beats the current partitioning by ``improvement_factor`` —
    replays the state into a fresh inner ingestor under the new scheme.  The
    merged sample stays *exactly* uniform over the global join at every
    chunk boundary, before, during and after a rebalance (module docstring).

    Parameters
    ----------
    query, k, num_shards, chunk_size, partition_attr, rng:
        As for :class:`ShardedIngestor` (the initial partitioning).
    monitor:
        The :class:`SkewMonitor` to poll at chunk boundaries (default: one
        with the default threshold).
    candidate_attrs:
        Attributes eligible as re-partitioning targets (default: every
        query attribute).
    allow_split:
        Also consider doubling the shard count, up to ``max_shards``.
    improvement_factor:
        Adopt a plan only when its simulated hottest-shard cost is at most
        this fraction of the current partitioning's simulated cost.
    window_tuples:
        How many of the most recently delivered stream tuples to keep as
        the planning sample (duplicates included) — the planner's picture
        of "current traffic".  A bounded window also means the planner
        adapts when the hot value drifts.
    """

    def __init__(
        self,
        query: JoinQuery,
        k: int,
        num_shards: int = DEFAULT_NUM_SHARDS,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        partition_attr: Optional[str] = None,
        monitor: Optional[SkewMonitor] = None,
        rng: Optional[random.Random] = None,
        candidate_attrs: Optional[Sequence[str]] = None,
        allow_split: bool = True,
        max_shards: int = 16,
        improvement_factor: float = DEFAULT_IMPROVEMENT_FACTOR,
        window_tuples: int = 8192,
    ) -> None:
        if not 0.0 < improvement_factor <= 1.0:
            raise ValueError("improvement_factor must be in (0, 1]")
        if max_shards < num_shards:
            raise ValueError("max_shards must be at least num_shards")
        if window_tuples <= 0:
            raise ValueError("window_tuples must be positive")
        self.query = query
        self.k = k
        self.chunk_size = chunk_size
        self.monitor = monitor if monitor is not None else SkewMonitor()
        self.candidate_attrs = tuple(candidate_attrs) if candidate_attrs else None
        self.allow_split = allow_split
        self.max_shards = max_shards
        self.improvement_factor = improvement_factor
        self._rng = rng if rng is not None else random.Random()
        self.inner = self._build_inner(num_shards, partition_attr)
        self.rebalances: List[RebalanceEvent] = []
        self.plans_attempted = 0
        self.tuples_ingested = 0
        self.batches_ingested = 0
        self._chunks_since_plan = 0
        # Window entries are (relation, row, recorded_shard) triples: the
        # shard the live router assigned at delivery time (-1 = broadcast),
        # or None when no valid record exists (legacy snapshots, entries
        # invalidated by a rebalance — the partitioning they were routed
        # under no longer holds).  Recorded entries let plan() score the
        # *current* partitioning without re-hashing the window.
        self._window: Deque[Tuple[str, tuple, Optional[int]]] = deque(
            maxlen=window_tuples
        )
        # Boundary hooks live on the *wrapper*, not the inner engine: a
        # rebalance swaps self.inner (fresh engine included), which would
        # silently drop engine-level registrations.
        self._boundary_hooks: List = []
        # Critical-path/partition/busy seconds of retired inner generations,
        # plus the serial rebalance overhead (state reassembly + planning).
        self._retired_critical_seconds = 0.0
        self._retired_partition_seconds = 0.0
        self.rebalance_seconds = 0.0

    def _build_inner(
        self, num_shards: int, partition_attr: Optional[str]
    ) -> ShardedIngestor:
        return ShardedIngestor(
            self.query,
            self.k,
            num_shards=num_shards,
            chunk_size=self.chunk_size,
            partition_attr=partition_attr,
            rng=random.Random(derive_seed(self._rng)),
        )

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest_batch(self, items: Sequence) -> int:
        """Ingest one chunk, then let the monitor inspect the shard loads."""
        # Normalise once; the inner ingestor's re-normalisation of plain
        # pairs is cheap (tuple() of a tuple is the identity), and the
        # planning window shares the result.
        pairs = as_relation_rows(items)
        pushed = self.inner.ingest_batch(pairs)
        if pushed == 0:
            return 0
        recorded = self.inner.take_last_assignments()
        if recorded is not None and len(recorded) == len(pairs):
            self._window.extend(
                (relation, row, shard)
                for (relation, row), shard in zip(pairs, recorded)
            )
        else:
            self._window.extend((relation, row, None) for relation, row in pairs)
        self.tuples_ingested += pushed
        self.batches_ingested += 1
        self._chunks_since_plan += 1
        self.maybe_rebalance()
        for hook in self._boundary_hooks:
            hook(pairs, None)
        return pushed

    def ingest(self, stream: Iterable[StreamTuple]) -> "RebalancingIngestor":
        """Cut ``stream`` into chunks and ingest them all; returns ``self``."""
        for chunk in chunk_stream(stream, self.chunk_size):
            self.ingest_batch(chunk)
        return self

    def add_boundary_hook(self, hook):
        """Register ``hook(items, parts)`` to run at every chunk boundary.

        Hooks are held by the wrapper and fire from its own
        :meth:`ingest_batch` — *after* any rebalance the chunk triggered, so
        a hook always observes a settled (possibly re-partitioned) inner
        ingestor.  ``parts`` is ``None``: the wrapper does not expose the
        inner routing.  Hooks survive rebalances, which replace the inner
        ingestor and its engine wholesale.
        """
        self._boundary_hooks.append(hook)
        return hook

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #
    @property
    def partition_attr(self) -> str:
        """The partition attribute currently in force."""
        return self.inner.partition_attr

    @property
    def num_shards(self) -> int:
        """The shard count currently in force."""
        return self.inner.num_shards

    def skew_report(self) -> SkewReport:
        """The monitor's current view of the inner ingestor (O(1)).

        The ``min_tuples`` guard is held against the cumulative *stream*
        count, not the current inner generation's counter (which restarts
        at the replayed row count after every rebalance).
        """
        return self.monitor.report(self.inner, stream_tuples=self.tuples_ingested)

    def _window_pairs(self) -> List[Tuple[str, tuple]]:
        """The planning window as plain ``(relation, row)`` pairs."""
        return [(relation, row) for relation, row, _ in self._window]

    def _simulate_current(self) -> RebalancePlan:
        """The current partitioning's plan, reusing recorded routing.

        Most window entries carry the shard the live router assigned at
        delivery time, so scoring the *current* partitioning is mostly a
        counting pass; only entries without a valid record (legacy
        snapshots, pre-rebalance leftovers) are re-hashed — through the
        same :func:`~repro.ingest.shard.route_rows` rule, so the result is
        identical to simulating the whole window from scratch.
        """
        num_shards = self.inner.num_shards
        loads = [0] * num_shards
        broadcast = 0
        unrecorded: List[Tuple[str, tuple]] = []
        for relation, row, shard in self._window:
            if shard is None:
                unrecorded.append((relation, row))
            elif shard < 0:
                broadcast += 1
            else:
                loads[shard] += 1
        if unrecorded:
            partial = _simulate(
                self.query, unrecorded, self.inner.partition_attr, num_shards
            )
            loads = [
                load + extra for load, extra in zip(loads, partial.predicted_loads)
            ]
        return RebalancePlan(
            self.inner.partition_attr,
            num_shards,
            tuple(load + broadcast for load in loads),
        )

    def plan(self) -> Tuple[RebalancePlan, RebalancePlan]:
        """Simulate candidate partitionings; ``(best, current)`` plans.

        Both are scored over the same recent-delivery window (O(window) per
        candidate), so the comparison is apples to apples.  ``best`` may
        equal ``current``'s configuration when nothing cooler exists.  The
        current plan reuses the shard assignments recorded at delivery time
        (:meth:`_simulate_current`) instead of re-hashing the window.
        """
        shard_counts = [self.inner.num_shards]
        if self.allow_split and self.inner.num_shards * 2 <= self.max_shards:
            shard_counts.append(self.inner.num_shards * 2)
        best = plan_partition(
            self.query, self._window_pairs(), self.candidate_attrs, tuple(shard_counts)
        )
        current = self._simulate_current()
        return best, current

    def maybe_rebalance(self) -> Optional[RebalanceEvent]:
        """Rebalance iff the monitor triggers and a plan clearly improves.

        The cheap O(1) skew check runs first; only a flagged imbalance pays
        for the O(window) planning pass, and every planning episode —
        adopted *or* rejected — starts the monitor's cooldown, so inherent
        skew (no cooler partitioning exists) costs one simulation per
        cooldown period, not one per chunk.  Returns the event when a
        rebalance happened, ``None`` otherwise.
        """
        if self.plans_attempted and self._chunks_since_plan < self.monitor.cooldown_chunks:
            return None
        report = self.skew_report()
        if not report.triggered:
            return None
        start = time.perf_counter()
        best, current = self.plan()
        plan_seconds = time.perf_counter() - start
        self.rebalance_seconds += plan_seconds
        self.plans_attempted += 1
        self._chunks_since_plan = 0
        same_config = (
            best.partition_attr == self.inner.partition_attr
            and best.num_shards == self.inner.num_shards
        )
        if same_config or best.max_load > current.max_load * self.improvement_factor:
            return None  # nothing clearly cooler; keep the current partitioning
        return self._apply(best, report, plan_seconds)

    def rebalance(
        self,
        partition_attr: Optional[str] = None,
        num_shards: Optional[int] = None,
    ) -> RebalanceEvent:
        """Force a rebalance to an explicit (or freshly planned) partitioning."""
        start = time.perf_counter()
        if partition_attr is None and num_shards is None:
            best, _ = self.plan()
        else:
            best = _simulate(
                self.query,
                self._window_pairs(),
                partition_attr or self.inner.partition_attr,
                num_shards or self.inner.num_shards,
            )
        plan_seconds = time.perf_counter() - start
        self.rebalance_seconds += plan_seconds
        self.plans_attempted += 1
        return self._apply(best, self.skew_report(), plan_seconds)

    def _apply(
        self, plan: RebalancePlan, report: SkewReport, plan_seconds: float
    ) -> RebalanceEvent:
        """Replay the stored state into a fresh inner ingestor under ``plan``."""
        start = time.perf_counter()
        stored = self.inner.stored_rows()
        pairs = [
            (name, row)
            for name in self.query.relation_names
            for row in stored[name]
        ]
        reassembly_seconds = time.perf_counter() - start
        self.rebalance_seconds += reassembly_seconds

        old = self.inner
        self._retired_critical_seconds += old.critical_path_seconds
        self._retired_partition_seconds += old.partition_seconds
        fresh = self._build_inner(plan.num_shards, plan.partition_attr)
        replay_start = time.perf_counter()
        fresh.ingest(pairs)
        replay_seconds = time.perf_counter() - replay_start
        self.inner = fresh
        self._chunks_since_plan = 0
        # The replay consumed the fresh router's delivery record, and the
        # window's recorded shards were routed under the *old* partitioning
        # — invalidate them so future planning re-hashes these entries.
        fresh.take_last_assignments()
        self._window = deque(
            ((relation, row, None) for relation, row, _ in self._window),
            maxlen=self._window.maxlen,
        )

        event = RebalanceEvent(
            at_tuples=self.tuples_ingested,
            observed_imbalance=report.imbalance,
            old_attr=old.partition_attr,
            new_attr=plan.partition_attr,
            old_shards=old.num_shards,
            new_shards=plan.num_shards,
            predicted_imbalance=plan.predicted_imbalance,
            replayed_tuples=len(pairs),
            plan_seconds=plan_seconds + reassembly_seconds,
            replay_seconds=replay_seconds,
        )
        self.rebalances.append(event)
        return event

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, object]:
        """The wrapper's complete resumable state, monitor policy included.

        The inner :class:`ShardedIngestor` rides its own native snapshot
        (replica reservoirs, derived seeds, engine accounting); on top the
        wrapper captures everything a future rebalance decision depends on —
        the monitor configuration, the recent-delivery planning window
        (duplicates included), the cooldown position, the master RNG state
        (so replay replicas of a post-restore rebalance draw the seeds an
        uninterrupted run would have drawn) and the rebalance history.
        """
        return {
            "query": self.query,
            "k": self.k,
            "chunk_size": self.chunk_size,
            "monitor": {
                "threshold": self.monitor.threshold,
                "min_tuples": self.monitor.min_tuples,
                "cooldown_chunks": self.monitor.cooldown_chunks,
            },
            "candidate_attrs": self.candidate_attrs,
            "allow_split": self.allow_split,
            "max_shards": self.max_shards,
            "improvement_factor": self.improvement_factor,
            "rng": self._rng.getstate(),
            "inner": self.inner.snapshot_state(),
            "window": list(self._window),
            "window_maxlen": self._window.maxlen,
            "rebalances": list(self.rebalances),
            "plans_attempted": self.plans_attempted,
            "tuples_ingested": self.tuples_ingested,
            "batches_ingested": self.batches_ingested,
            "chunks_since_plan": self._chunks_since_plan,
            "retired_critical_seconds": self._retired_critical_seconds,
            "retired_partition_seconds": self._retired_partition_seconds,
            "rebalance_seconds": self.rebalance_seconds,
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, object]) -> "RebalancingIngestor":
        """Rebuild a wrapper from a :meth:`snapshot_state` snapshot."""
        inner = ShardedIngestor.from_snapshot(state["inner"])
        ingestor = cls(
            state["query"],
            state["k"],
            num_shards=inner.num_shards,
            chunk_size=state["chunk_size"],
            partition_attr=inner.partition_attr,
            monitor=SkewMonitor(**state["monitor"]),
            rng=random.Random(),  # throwaway; exact state restored below
            candidate_attrs=state["candidate_attrs"],
            allow_split=state["allow_split"],
            max_shards=state["max_shards"],
            improvement_factor=state["improvement_factor"],
            window_tuples=state["window_maxlen"],
        )
        ingestor._rng.setstate(state["rng"])
        ingestor.inner = inner
        # Pre-routing-record snapshots stored bare (relation, row) pairs;
        # normalise them to unrecorded triples (the planner re-hashes those).
        ingestor._window = deque(
            (
                (entry[0], entry[1], entry[2] if len(entry) == 3 else None)
                for entry in state["window"]
            ),
            maxlen=state["window_maxlen"],
        )
        ingestor.rebalances = list(state["rebalances"])
        ingestor.plans_attempted = state["plans_attempted"]
        ingestor.tuples_ingested = state["tuples_ingested"]
        ingestor.batches_ingested = state["batches_ingested"]
        ingestor._chunks_since_plan = state["chunks_since_plan"]
        ingestor._retired_critical_seconds = state["retired_critical_seconds"]
        ingestor._retired_partition_seconds = state["retired_partition_seconds"]
        ingestor.rebalance_seconds = state["rebalance_seconds"]
        return ingestor

    def save(self, path: str) -> None:
        """Write a checkpoint; call at a chunk boundary (anywhere outside
        an :meth:`ingest_batch` call)."""
        CODEC.dump(path, "rebalancing", self.snapshot_state())

    @classmethod
    def restore(cls, path: str) -> "RebalancingIngestor":
        """Rebuild a :meth:`save`d wrapper; the stream suffix resumes bit
        for bit — including any rebalances the suffix goes on to trigger."""
        return cls.from_snapshot(
            CODEC.load(path, expected_kind="rebalancing")["state"]
        )

    # ------------------------------------------------------------------ #
    # Sampling and statistics (delegated to the current inner ingestor)
    # ------------------------------------------------------------------ #
    def merged_sample(
        self, k: Optional[int] = None, rng: Optional[random.Random] = None
    ) -> List[dict]:
        """A uniform sample of the global join (see ``ShardedIngestor``)."""
        return self.inner.merged_sample(k, rng=rng)

    def shard_counts(self) -> List[int]:
        """Exact local result counts under the current partitioning."""
        return self.inner.shard_counts()

    def total_results(self) -> int:
        """Exact global ``|Q(R)|`` (invariant across rebalances)."""
        return self.inner.total_results()

    @property
    def critical_path_seconds(self) -> float:
        """Wall-clock a one-worker-per-shard deployment would have paid.

        Sum over every chunk (of every inner generation, replay chunks
        included) of partitioning cost plus the slowest shard, plus the
        serial rebalance overhead (state reassembly and planning).
        """
        return (
            self._retired_critical_seconds
            + self.inner.critical_path_seconds
            + self.rebalance_seconds
        )

    def statistics(self) -> Dict[str, object]:
        """Wrapper counters + rebalance history + the inner ingestor's stats.

        Same O(1) contract as ``ShardedIngestor.statistics()``: per-shard
        loads and timing only, never the O(N) exact counts.  Scalar timing
        and tuple counters are *cumulative* across rebalances; the
        per-shard lists (``shard_tuples``, ``shard_busy_seconds``) and
        ``relation_deliveries`` describe the current generation only — the
        shard count can change at a rebalance, so the lists are not
        summable across generations.
        """
        stats = self.inner.statistics()
        stats.update(
            {
                "tuples_ingested": self.tuples_ingested,
                "batches_ingested": self.batches_ingested,
                "partition_seconds": round(
                    self._retired_partition_seconds + self.inner.partition_seconds, 4
                ),
                "rebalances": len(self.rebalances),
                "plans_attempted": self.plans_attempted,
                "rebalance_seconds": round(self.rebalance_seconds, 4),
                "replayed_tuples": sum(e.replayed_tuples for e in self.rebalances),
                "critical_path_seconds": round(self.critical_path_seconds, 4),
                "imbalance_threshold": self.monitor.threshold,
                "planning_window_tuples": len(self._window),
                "rebalance_events": [
                    {
                        "at_tuples": event.at_tuples,
                        "observed_imbalance": round(event.observed_imbalance, 4),
                        "partitioning": (
                            f"{event.old_attr}/{event.old_shards}"
                            f" -> {event.new_attr}/{event.new_shards}"
                        ),
                        "predicted_imbalance": round(event.predicted_imbalance, 4),
                        "replayed_tuples": event.replayed_tuples,
                        "replay_seconds": round(event.replay_seconds, 4),
                    }
                    for event in self.rebalances
                ],
            }
        )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RebalancingIngestor({self.query.name!r}, k={self.k}, "
            f"shards={self.num_shards}, partition_attr={self.partition_attr!r}, "
            f"rebalances={len(self.rebalances)})"
        )
