"""Persistent shard worker pool: long-lived processes, cheap chunk handoff.

The original ``ShardedIngestor.ingest_parallel`` materialised the whole
stream, spawned a fresh ``multiprocessing.Pool`` per call, and pickled each
shard's *entire* sub-stream to a one-shot worker — the measured wall clock
was ~2.7× the serial sharded total on a single-CPU box, and worse, the call
discarded the live shard samplers afterwards (no further ingestion, no
checkpointing).  This module replaces that with the runtime the sharded
executor literature (Photon-style long-lived workers, morsel-driven
parallelism) actually describes:

* **Long-lived workers.**  :class:`ShardWorkerPool` spawns one process per
  shard, *once*.  Each worker rebuilds a live shard replica from the same
  snapshot record a checkpoint would carry (:func:`repro.core.backend
  .snapshot_backend` → :func:`restore_backend`), so worker-side state is
  exactly the parent-side state — including the replica's RNG, bit for bit.
* **Cheap chunk handoff.**  The parent routes each chunk with the same hash
  router as serial ingestion and ships each shard *the exact sub-chunk
  sequence the serial path would have fed it*, over a persistent duplex
  pipe per worker.  With the default ``slab`` transport the pickled
  sub-chunk bytes travel through a reusable ``multiprocessing
  .shared_memory`` block per worker (grown geometrically, never reallocated
  per chunk) and only a tiny ``(seq, nbytes)`` header crosses the pipe; the
  ``pipe`` transport sends the sub-chunk inline for platforms without
  shared memory.  On the wire a sub-chunk is the list of ``(relation,
  row)`` pairs every ingest seam normalises to (``as_relation_rows``) —
  logically identical to the StreamTuples the serial lane sees, but far
  cheaper to pickle.  Workers apply each sub-chunk through the same
  ``BatchIngestor.ingest_batch`` call the serial per-shard lane uses, so a
  pool-fed replica is **bit-identical** to its serial counterpart — not
  merely set-equal.
* **Pipelined scatter, explicit barriers.**  ``submit`` returns once the
  sub-chunks are handed off (bounded by :data:`DEFAULT_MAX_PENDING` in
  flight per worker — honest backpressure); :meth:`drain` is the chunk
  boundary.  Acks carry per-chunk worker busy seconds, so the parent can
  report measured per-worker busy time and a per-chunk critical path
  (slowest worker per chunk) instead of the ``None`` placeholders the
  one-shot pool left behind.
* **Sticky poison.**  The first worker failure (an exception shipped back,
  or the process dying outright) poisons the pool in the
  :class:`~repro.ingest.pipeline.AsyncIngestor` style: every subsequent
  ``submit``/``drain``/state read re-raises the same
  :class:`WorkerCrashError`, because shards that saw different chunk
  prefixes can no longer produce a trustworthy merged sample.
* **Live-state round trips.**  At any drain point the parent can pull each
  worker's reservoir + exact local count (for ``merged_sample`` against
  live workers) or a full snapshot record + engine accounting (for
  ``CheckpointCodec`` checkpoints taken *through* the pool) — the
  capability the one-shot path structurally lacked.

The pool is deliberately sampler-agnostic: anything whose snapshot record
restores into a live sampler (native ``snapshot_state`` capability or the
generic pickle fallback) can live in a worker — which is how cyclic
replicas and custom factories ride the parallel path now.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
import weakref
from multiprocessing import connection
from typing import Dict, List, Optional, Sequence, Tuple

try:  # py3.8+; guarded so the pipe transport keeps working without it
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - all supported platforms have it
    _shared_memory = None

from ..core.backend import (
    restore_backend,
    restore_transport,
    snapshot_backend,
    snapshot_transport,
)
from ..relational.join import count_results
from ..relational.stream import StreamDelete, StreamTuple, as_relation_rows

#: Environment knob selecting the chunk transport: ``slab`` (shared-memory
#: chunk slabs, the default) or ``pipe`` (inline pickles over the pipe).
TRANSPORT_ENV = "REPRO_POOL_TRANSPORT"

#: Maximum sub-chunks in flight per worker before ``submit`` blocks on acks
#: — the same bounded-buffer backpressure idea as the async transport.
DEFAULT_MAX_PENDING = 8

#: Initial shared-memory slab size per worker; grown geometrically.
_INITIAL_SLAB_BYTES = 1 << 18


class WorkerCrashError(RuntimeError):
    """A pool worker failed (exception or process death); the pool is
    poisoned — shard replicas have seen different chunk prefixes, so no
    sample drawn across them is trustworthy.  Carries the shard index and
    the worker-side traceback (or death notice)."""

    def __init__(self, shard: int, description: str) -> None:
        super().__init__(
            f"shard worker {shard} failed; the pool is poisoned (every shard "
            f"must see its full sub-chunk sequence for the merge to be "
            f"uniform) — close the pool and rebuild from the last "
            f"checkpoint.\n--- worker {shard} ---\n{description}"
        )
        self.shard = shard


def _worker_statistics(sampler) -> Dict[str, object]:
    try:
        return dict(sampler.statistics())
    except Exception:  # pragma: no cover - statistics are best-effort
        return {}


def _pool_worker_main(conn, shard: int, init_payload: bytes) -> None:
    """One worker's service loop: build the replica once, then serve
    sub-chunks, state reads and snapshot requests until ``close``.

    Every failure — a bad init payload, an exception inside
    ``ingest_batch`` — is reported back as an ``("error", traceback)``
    message and latches the worker into a poisoned state that answers
    everything but ``close`` with the same error (the parent raises it as
    :class:`WorkerCrashError`).
    """
    from .batch import BatchIngestor  # deferred: avoid import cycles at fork

    slab = None
    sampler = None
    ingestor = None
    poisoned: Optional[str] = None
    try:
        init = restore_transport(init_payload)
        sampler = restore_backend(init["backend"])
        ingestor = BatchIngestor(sampler, chunk_size=init["chunk_size"])
        ingestor._engine.restore_state(init["engine"])
    except BaseException:
        poisoned = traceback.format_exc()
        try:
            conn.send(("error", poisoned))
        except (OSError, BrokenPipeError):
            return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        tag = message[0]
        if tag == "close":
            break
        try:
            if poisoned is not None:
                conn.send(("error", poisoned))
                continue
            if tag == "slab":
                if slab is not None:
                    slab.close()
                # The parent owns the slab's lifetime (create + unlink).
                # Attaching re-registers the name with the fork-shared
                # resource tracker, but its cache is a set, so the parent's
                # single unlink-time unregister still balances the books.
                slab = _shared_memory.SharedMemory(name=message[1])
            elif tag == "chunk":
                seq = message[1]
                if message[2] is None:  # pipe transport: part rides inline
                    part = message[3]
                else:  # slab transport: (seq, nbytes, None)
                    nbytes = message[2]
                    data = bytes(slab.buf[:nbytes])
                    # Ack receipt *before* ingesting: the parent may now
                    # rewrite the slab while this worker chews on the chunk.
                    conn.send(("got", seq))
                    part = pickle.loads(data)
                # CPU time, not wall: on a box with fewer cores than
                # workers, wall-in-worker counts time spent preempted and
                # the busy sum comes out several times the true work (and
                # the derived critical path exceeds the wall clock).
                start = time.process_time()
                ingestor.ingest_batch(part)
                conn.send(("ok", seq, time.process_time() - start))
            elif tag == "state":
                index = getattr(sampler, "index", None)
                count = (
                    count_results(index.query, index.database)
                    if index is not None
                    else None
                )
                conn.send(
                    (
                        "state",
                        (
                            list(sampler.sample),
                            count,
                            getattr(sampler, "k", None),
                            _worker_statistics(sampler),
                            ingestor.tuples_ingested,
                        ),
                    )
                )
            elif tag == "snapshot":
                record = {
                    "backend": snapshot_backend(sampler),
                    "engine": ingestor._engine.snapshot_state(),
                }
                conn.send(("snapshot", snapshot_transport(record)))
            else:
                raise ValueError(f"unknown pool command {tag!r}")
        except BaseException:
            poisoned = traceback.format_exc()
            try:
                conn.send(("error", poisoned))
            except (OSError, BrokenPipeError):
                break
    if slab is not None:
        slab.close()
    try:
        conn.close()
    except OSError:  # pragma: no cover - already gone
        pass


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = (
        "shard",
        "process",
        "conn",
        "slab",
        "retired_slabs",
        "awaiting_got",
        "pending_acks",
        "delivered_tuples",
        "chunks_shipped",
        "bytes_shipped",
    )

    def __init__(self, shard: int, process, conn) -> None:
        self.shard = shard
        self.process = process
        self.conn = conn
        self.slab = None
        self.retired_slabs: List = []
        self.awaiting_got: Optional[int] = None
        self.pending_acks: List[int] = []
        self.delivered_tuples = 0
        self.chunks_shipped = 0
        self.bytes_shipped = 0


def _terminate_processes(processes) -> None:
    """Finalizer: make sure orphaned worker processes never outlive their
    pool (daemon processes would die with the parent anyway; this reclaims
    them as soon as the pool is garbage collected)."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        if process.is_alive():
            process.join(timeout=5)


class ShardWorkerPool:
    """One long-lived worker process per shard, fed sub-chunks over
    reusable IPC buffers.

    Parameters
    ----------
    worker_inits:
        One init record per shard: ``{"backend": snapshot_backend(replica),
        "engine": <BatchIngestor engine snapshot>, "chunk_size": int}``.
        Workers rebuild their replica from the record, so a pool started
        mid-stream (or from a restored checkpoint) continues exactly where
        the parent-side replicas stood.
    transport:
        ``"slab"`` (shared-memory chunk slabs, default), ``"pipe"``
        (inline pickles), or ``None`` to read :data:`TRANSPORT_ENV`.
    max_pending:
        Sub-chunks in flight per worker before :meth:`submit` blocks.
    """

    def __init__(
        self,
        worker_inits: Sequence[Dict[str, object]],
        transport: Optional[str] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if not worker_inits:
            raise ValueError("a worker pool needs at least one shard")
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if transport is None:
            transport = os.environ.get(TRANSPORT_ENV, "slab")
        if transport not in ("slab", "pipe"):
            raise ValueError(
                f"unknown pool transport {transport!r}; choose 'slab' or 'pipe'"
            )
        if transport == "slab" and _shared_memory is None:  # pragma: no cover
            transport = "pipe"
        self.transport = transport
        self.max_pending = max_pending
        self._failure: Optional[WorkerCrashError] = None
        self._closed = False
        self._seq = 0
        #: seq -> {"remaining": set(shards), "max_busy": float, "route": float}
        self._inflight: Dict[int, Dict[str, object]] = {}
        #: accounting deltas since the owner last folded them
        self._busy_delta: List[float] = [0.0] * len(worker_inits)
        self._critical_delta = 0.0
        if self.transport == "slab":
            # Start the resource tracker *before* forking: workers then
            # inherit and share it, so their attach-time registrations land
            # in the same (set-based, deduplicating) cache the parent's
            # unlink-time unregister balances.  Forked without it, every
            # worker lazily spawns a private tracker that later races the
            # parent's unlink and warns about already-gone segments.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        self.workers: List[_WorkerHandle] = []
        for shard, init in enumerate(worker_inits):
            parent_conn, child_conn = multiprocessing.Pipe()
            process = multiprocessing.Process(
                target=_pool_worker_main,
                args=(child_conn, shard, snapshot_transport(dict(init))),
                name=f"shard-pool-{shard}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.workers.append(_WorkerHandle(shard, process, parent_conn))
        self._finalizer = weakref.finalize(
            self, _terminate_processes, [w.process for w in self.workers]
        )

    # ------------------------------------------------------------------ #
    # Liveness
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        return not self._closed

    @property
    def poisoned(self) -> bool:
        return self._failure is not None

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _poison(self, error: WorkerCrashError) -> None:
        if self._failure is None:
            self._failure = error
        raise self._failure

    def _raise_pending(self) -> None:
        if self._failure is not None:
            raise self._failure
        if self._closed:
            raise RuntimeError("this ShardWorkerPool is closed")

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #
    def _flush_retired_slabs(self, handle: _WorkerHandle) -> None:
        # Any message from the worker proves it processed everything sent
        # before that message — including the ``slab`` switch — so retired
        # slabs are detached on the worker side and safe to unlink.
        for slab in handle.retired_slabs:
            slab.close()
            slab.unlink()
        handle.retired_slabs.clear()

    def _dispatch(self, handle: _WorkerHandle, message: Tuple) -> None:
        tag = message[0]
        self._flush_retired_slabs(handle)
        if tag == "got":
            if handle.awaiting_got == message[1]:
                handle.awaiting_got = None
            return
        if tag == "ok":
            seq, busy = message[1], message[2]
            if handle.pending_acks and handle.pending_acks[0] == seq:
                handle.pending_acks.pop(0)
            self._busy_delta[handle.shard] += busy
            entry = self._inflight.get(seq)
            if entry is not None:
                entry["remaining"].discard(handle.shard)
                if busy > entry["max_busy"]:
                    entry["max_busy"] = busy
                self._settle(seq, entry)
            return
        if tag == "error":
            self._poison(WorkerCrashError(handle.shard, message[1]))
        raise ValueError(f"unexpected pool reply {tag!r}")  # pragma: no cover

    def _settle(self, seq: int, entry: Dict[str, object]) -> None:
        if not entry["remaining"]:
            self._critical_delta += entry["route"] + entry["max_busy"]
            del self._inflight[seq]

    def _receive(self, handle: _WorkerHandle, block: bool) -> bool:
        """Absorb one message from ``handle``; returns whether one arrived.

        Blocks (when asked) on both the pipe and the worker's death
        sentinel, so a hard-killed worker surfaces as a
        :class:`WorkerCrashError` instead of a hang.
        """
        while True:
            try:
                if handle.conn.poll(0):
                    self._dispatch(handle, handle.conn.recv())
                    return True
            except (EOFError, OSError):
                self._poison(
                    WorkerCrashError(
                        handle.shard,
                        f"worker process died (exitcode "
                        f"{handle.process.exitcode})",
                    )
                )
            if not block:
                return False
            ready = connection.wait([handle.conn, handle.process.sentinel])
            if handle.conn not in ready:
                # The process died; one final poll catches a racing last
                # message (e.g. the error report) before declaring death.
                if not handle.conn.poll(0):
                    self._poison(
                        WorkerCrashError(
                            handle.shard,
                            f"worker process died (exitcode "
                            f"{handle.process.exitcode})",
                        )
                    )

    def collect(self) -> None:
        """Absorb every ack that is already waiting (non-blocking)."""
        if self._failure is not None or self._closed:
            return
        for handle in self.workers:
            while self._receive(handle, block=False):
                pass

    # ------------------------------------------------------------------ #
    # Send path
    # ------------------------------------------------------------------ #
    def _send(self, handle: _WorkerHandle, message: Tuple) -> None:
        # A worker that died with the pipe idle surfaces on the *send* side
        # first (EPIPE); report it as the same WorkerCrashError the receive
        # path raises instead of leaking a BrokenPipeError.
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            self._poison(
                WorkerCrashError(
                    handle.shard,
                    f"worker process died (exitcode "
                    f"{handle.process.exitcode})",
                )
            )

    def _ensure_slab(self, handle: _WorkerHandle, need: int) -> None:
        if handle.slab is not None and handle.slab.size >= need:
            return
        size = max(
            _INITIAL_SLAB_BYTES,
            need,
            (handle.slab.size * 2) if handle.slab is not None else 0,
        )
        slab = _shared_memory.SharedMemory(create=True, size=size)
        if handle.slab is not None:
            # The worker may still be attached to (though done reading —
            # `awaiting_got is None`) the old slab; unlink it only after
            # the worker's next message proves the switch was processed.
            handle.retired_slabs.append(handle.slab)
        handle.slab = slab
        self._send(handle, ("slab", slab.name))

    def _send_chunk(self, handle: _WorkerHandle, seq: int, part: List) -> None:
        # Normalise to the ``(relation, row)`` pairs every ingest seam
        # accepts (see ``chunk_apply``): the logical items are identical —
        # backends normalise StreamTuples to exactly these pairs anyway —
        # but they pickle an order of magnitude cheaper, which is most of
        # the pool's IPC tax on a chunk.  ``ShardedIngestor._route`` already
        # emits pair form, so the common case is a type scan, not a rebuild.
        if not all(type(item) is tuple for item in part):
            if any(isinstance(item, StreamDelete) for item in part):
                # Turnstile sub-chunks: retractions must arrive at the worker
                # as retractions (and in stream order), so inserts are
                # normalised item-by-item around the StreamDelete objects.
                part = [
                    item
                    if isinstance(item, StreamDelete)
                    else (item.relation, item.row)
                    if isinstance(item, StreamTuple)
                    else (item[0], tuple(item[1]))
                    for item in part
                ]
            else:
                part = as_relation_rows(part)
        if self.transport == "slab":
            # The slab is reusable only once the worker confirmed it read
            # the previous payload out (the "got" ack, sent pre-ingest).
            while handle.awaiting_got is not None:
                self._receive(handle, block=True)
            payload = pickle.dumps(part, protocol=pickle.HIGHEST_PROTOCOL)
            self._ensure_slab(handle, len(payload))
            handle.slab.buf[: len(payload)] = payload
            self._send(handle, ("chunk", seq, len(payload)))
            handle.awaiting_got = seq
            handle.bytes_shipped += len(payload)
        else:
            self._send(handle, ("chunk", seq, None, part))
        handle.pending_acks.append(seq)
        handle.chunks_shipped += 1
        handle.delivered_tuples += len(part)
        while len(handle.pending_acks) > self.max_pending:
            self._receive(handle, block=True)

    def submit(self, parts: Sequence[List], route_seconds: float = 0.0) -> int:
        """Scatter one routed chunk (``parts[shard]`` per worker).

        Empty parts are skipped exactly as the serial engine skips them, so
        every worker sees the serial path's sub-chunk sequence verbatim.
        Returns the chunk's sequence number.  Pipelined: workers may still
        be ingesting when this returns — :meth:`drain` is the barrier.
        """
        self._raise_pending()
        if len(parts) != len(self.workers):
            raise ValueError(
                f"routed chunk has {len(parts)} parts for {len(self.workers)} "
                "pool workers"
            )
        self.collect()
        seq = self._seq
        self._seq += 1
        shards = {shard for shard, part in enumerate(parts) if part}
        entry = {"remaining": shards, "max_busy": 0.0, "route": route_seconds}
        self._inflight[seq] = entry
        # No defensive copy: both transports serialise the part before
        # returning, so the caller may reuse its buffers immediately after.
        for shard in sorted(shards):
            self._send_chunk(self.workers[shard], seq, parts[shard])
        self._settle(seq, entry)  # all-empty chunks settle immediately
        return seq

    # ------------------------------------------------------------------ #
    # Barriers and state round trips
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Block until every scattered sub-chunk is fully ingested — the
        pool's chunk boundary.  Re-raises a sticky failure."""
        self._raise_pending()
        for handle in self.workers:
            while handle.pending_acks or handle.awaiting_got is not None:
                self._receive(handle, block=True)

    def _request(self, handle: _WorkerHandle, message: Tuple, expect: str):
        self._send(handle, message)
        while True:
            try:
                reply = handle.conn.recv()
            except (EOFError, OSError):
                self._poison(
                    WorkerCrashError(
                        handle.shard,
                        f"worker process died (exitcode "
                        f"{handle.process.exitcode})",
                    )
                )
            if reply[0] == expect:
                self._flush_retired_slabs(handle)
                return reply[1]
            self._dispatch(handle, reply)

    def shard_states(self) -> List[Tuple[List[dict], Optional[int], Optional[int], Dict[str, object], int]]:
        """Drain, then fetch ``(sample, exact_count, capacity, statistics,
        tuples_ingested)`` from every live worker — what ``merged_sample``
        needs, read at a chunk boundary."""
        self.drain()
        return [
            self._request(handle, ("state",), "state") for handle in self.workers
        ]

    def snapshots(self) -> List[Dict[str, object]]:
        """Drain, then fetch each worker's full durable state: the replica's
        :func:`~repro.core.backend.snapshot_backend` record plus its
        ingestion-engine accounting — the same shape the serial
        checkpointing path captures, so a checkpoint written through the
        pool restores through the unchanged ``CheckpointCodec`` probe."""
        self.drain()
        return [
            restore_transport(self._request(handle, ("snapshot",), "snapshot"))
            for handle in self.workers
        ]

    # ------------------------------------------------------------------ #
    # Accounting hand-off
    # ------------------------------------------------------------------ #
    def take_busy_deltas(self) -> List[float]:
        """Per-worker busy seconds accumulated since the last take."""
        deltas = list(self._busy_delta)
        self._busy_delta = [0.0] * len(self.workers)
        return deltas

    def take_critical_delta(self) -> float:
        """Sum over completed chunks of (route + slowest worker) since the
        last take — the pool's contribution to the critical path."""
        delta = self._critical_delta
        self._critical_delta = 0.0
        return delta

    @property
    def delivered_tuples(self) -> List[float]:
        """Stream tuples shipped per worker so far (broadcasts included)."""
        return [handle.delivered_tuples for handle in self.workers]

    def statistics(self) -> Dict[str, object]:
        return {
            "workers": len(self.workers),
            "transport": self.transport,
            "max_pending": self.max_pending,
            "chunks_shipped": [h.chunks_shipped for h in self.workers],
            "tuples_shipped": [h.delivered_tuples for h in self.workers],
            "bytes_shipped": [h.bytes_shipped for h in self.workers],
            "poisoned": self.poisoned,
        }

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers and release every IPC resource (idempotent).

        A healthy pool is drained first so no scattered chunk is silently
        dropped; a poisoned pool skips the drain (its backlog is
        meaningless) and just reclaims the processes.  Never raises the
        sticky failure — this is the cleanup path.
        """
        if self._closed:
            return
        self._closed = True
        if self._failure is None:
            try:
                for handle in self.workers:
                    while handle.pending_acks or handle.awaiting_got is not None:
                        self._receive(handle, block=True)
            except WorkerCrashError:
                pass
        for handle in self.workers:
            try:
                handle.conn.send(("close",))
            except (OSError, BrokenPipeError):
                pass
        for handle in self.workers:
            handle.process.join(timeout=5)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=5)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            for slab in handle.retired_slabs:
                slab.close()
                slab.unlink()
            handle.retired_slabs.clear()
            if handle.slab is not None:
                handle.slab.close()
                handle.slab.unlink()
                handle.slab = None
        self._finalizer.detach()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "poisoned" if self.poisoned else ("closed" if self._closed else "live")
        return (
            f"ShardWorkerPool(workers={len(self.workers)}, "
            f"transport={self.transport!r}, {state})"
        )


__all__ = [
    "TRANSPORT_ENV",
    "DEFAULT_MAX_PENDING",
    "WorkerCrashError",
    "ShardWorkerPool",
]
