"""String streams with an edit-distance predicate (Section 6.3).

The last experiment of the paper compares the predicate-aware reservoir
sampler (RSWP, Algorithm 1) against the classic reservoir sampler (RS) on a
stream of random strings: an item is *real* when its edit distance to a fixed
query string is at most a threshold.  The point of the experiment is that RS
must evaluate the (expensive) predicate on every item, while RSWP skips most
items entirely once the reservoir is full.

The paper uses 1024-character strings and a threshold of 16; a pure-Python
reproduction scales this down (default 64 characters, threshold 8), which
preserves the cost asymmetry between "evaluate the predicate" and "skip".
The banded Levenshtein implementation below only explores the diagonal band
of width ``2·limit + 1``, exactly the optimisation a production system would
use for a thresholded distance.
"""

from __future__ import annotations

import random
import string
from typing import Callable, List, Sequence, Tuple


def levenshtein_within(first: str, second: str, limit: int) -> bool:
    """Whether the edit distance between two strings is at most ``limit``.

    Uses the classic banded dynamic program: cells farther than ``limit``
    from the diagonal can never lead to a distance within the threshold, so
    only a band of width ``2·limit + 1`` is evaluated, with early exit when a
    whole row exceeds the limit.
    """
    if limit < 0:
        raise ValueError("limit must be non-negative")
    if abs(len(first) - len(second)) > limit:
        return False
    if first == second:
        return True
    infinity = limit + 1
    previous = [col if col <= limit else infinity for col in range(len(second) + 1)]
    for row, char_a in enumerate(first, start=1):
        low = max(1, row - limit)
        high = min(len(second), row + limit)
        current = [infinity] * (len(second) + 1)
        if row <= limit:
            current[0] = row
        best = current[0]
        for col in range(low, high + 1):
            char_b = second[col - 1]
            cost = 0 if char_a == char_b else 1
            value = min(
                previous[col] + 1,          # deletion
                current[col - 1] + 1,       # insertion
                previous[col - 1] + cost,   # substitution / match
            )
            value = min(value, infinity)
            current[col] = value
            if value < best:
                best = value
        if best > limit:
            return False
        previous = current
    return previous[len(second)] <= limit


def levenshtein(first: str, second: str) -> int:
    """Plain (unbanded) Levenshtein distance; used as ground truth in tests."""
    previous = list(range(len(second) + 1))
    for row, char_a in enumerate(first, start=1):
        current = [row]
        for col, char_b in enumerate(second, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[col] + 1, current[col - 1] + 1, previous[col - 1] + cost))
        previous = current
    return previous[len(second)]


class EditDistancePredicate:
    """The experiment's predicate: "within ``threshold`` edits of the query string".

    Counts how many times it was evaluated, which is the work the skip-based
    sampler saves (Figures 12 and 13 report exactly this asymmetry as time).
    """

    def __init__(self, query_string: str, threshold: int) -> None:
        self.query_string = query_string
        self.threshold = threshold
        self.evaluations = 0

    def __call__(self, item: str) -> bool:
        self.evaluations += 1
        return levenshtein_within(self.query_string, item, self.threshold)


def random_string(length: int, rng: random.Random, alphabet: str = string.ascii_lowercase) -> str:
    """A uniformly random string of the given length."""
    return "".join(rng.choice(alphabet) for _ in range(length))


def perturb(base: str, edits: int, rng: random.Random, alphabet: str = string.ascii_lowercase) -> str:
    """Apply ``edits`` random single-character edits (substitute/insert/delete)."""
    chars = list(base)
    for _ in range(edits):
        operation = rng.randrange(3)
        if operation == 0 and chars:  # substitution
            chars[rng.randrange(len(chars))] = rng.choice(alphabet)
        elif operation == 1:  # insertion
            chars.insert(rng.randrange(len(chars) + 1), rng.choice(alphabet))
        elif chars:  # deletion
            del chars[rng.randrange(len(chars))]
    return "".join(chars)


def string_stream(
    n_items: int,
    density: float,
    rng: random.Random,
    base_length: int = 64,
    threshold: int = 8,
) -> Tuple[List[str], str, EditDistancePredicate]:
    """Build a φ-dense string stream plus its query string and predicate.

    Real items are perturbations of the query string within ``threshold``
    edits, dummies are perturbed far beyond the threshold (at least
    ``3·threshold`` edits of which ``threshold+1`` are guaranteed-distance
    insertions).  Real items are spread evenly so every prefix has at least a
    ``density`` fraction of real items (Definition 3.4).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must lie in [0, 1]")
    query_string = random_string(base_length, rng)
    items: List[str] = []
    reals_so_far = 0
    for position in range(1, n_items + 1):
        need_real = reals_so_far < density * position
        if need_real:
            item = perturb(query_string, rng.randrange(threshold + 1), rng)
            reals_so_far += 1
        else:
            # Make the item long enough that the length difference alone
            # already exceeds the threshold: it is certainly a dummy.
            padding = random_string(threshold + 1, rng)
            item = perturb(query_string, 2 * threshold, rng) + padding
        items.append(item)
    predicate = EditDistancePredicate(query_string, threshold)
    return items, query_string, predicate
