"""Workload generators: graph, TPC-DS-like, LDBC-SNB-like and string streams."""

from . import graph, ldbc, strings, tpcds
from .graph import (
    dumbbell_query,
    edge_stream,
    epinions_like,
    graph_workload,
    line_query,
    powerlaw_edges,
    star_query,
    triangle_query,
    uniform_edges,
)
from .strings import (
    EditDistancePredicate,
    levenshtein,
    levenshtein_within,
    perturb,
    random_string,
    string_stream,
)

__all__ = [
    "graph",
    "ldbc",
    "strings",
    "tpcds",
    "dumbbell_query",
    "edge_stream",
    "epinions_like",
    "graph_workload",
    "line_query",
    "powerlaw_edges",
    "star_query",
    "triangle_query",
    "uniform_edges",
    "EditDistancePredicate",
    "levenshtein",
    "levenshtein_within",
    "perturb",
    "random_string",
    "string_stream",
]
