"""Graph workloads: synthetic edge sets and the paper's graph join queries.

The paper evaluates on the SNAP Epinions who-trusts-whom graph (508,837
directed edges).  That dataset cannot be bundled here, so
:func:`epinions_like` generates a synthetic heavy-tailed directed graph with
the same qualitative properties (skewed in/out degrees, ~7 edges per node),
scaled down to whatever edge count the experiment asks for.  The join queries
— line-k, star-k, triangle and the dumbbell — are built exactly as in the
paper's Appendix A: every logical relation ranges over the full edge set and
receives its own independently shuffled insertion stream.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..relational.query import JoinQuery
from ..relational.stream import StreamTuple, interleave, stream_from_rows
from ..relational.schema import RelationSchema

Edge = Tuple[int, int]


# ---------------------------------------------------------------------- #
# Synthetic graphs
# ---------------------------------------------------------------------- #
def uniform_edges(n_nodes: int, n_edges: int, rng: random.Random) -> List[Edge]:
    """Distinct directed edges with endpoints chosen uniformly at random."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if n_edges > n_nodes * (n_nodes - 1):
        raise ValueError(
            f"cannot place {n_edges} distinct directed edges on {n_nodes} nodes"
        )
    edges: set = set()
    while len(edges) < n_edges:
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes)
        if src != dst:
            edges.add((src, dst))
    return list(edges)


def _node_count_for(n_edges: int, edges_per_node: float = 7.0) -> int:
    """A node count that keeps ~``edges_per_node`` average degree but always
    leaves enough room for ``n_edges`` distinct directed edges."""
    import math

    by_density = int(n_edges / edges_per_node)
    by_capacity = int(math.isqrt(max(n_edges, 1))) + 2
    return max(4, by_density, by_capacity)


class _ZipfSampler:
    """Sample node ids with probability proportional to ``1 / rank^skew``."""

    def __init__(self, n: int, skew: float, rng: random.Random) -> None:
        self._rng = rng
        weights = [1.0 / (rank + 1) ** skew for rank in range(n)]
        total = 0.0
        self._cumulative: List[float] = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def draw(self) -> int:
        return bisect.bisect_left(self._cumulative, self._rng.random() * self._total)


def powerlaw_edges(
    n_nodes: int, n_edges: int, rng: random.Random, skew: float = 0.8
) -> List[Edge]:
    """Distinct directed edges with Zipf-skewed endpoints (heavy-tailed degrees)."""
    if n_edges > n_nodes * (n_nodes - 1):
        raise ValueError(
            f"cannot place {n_edges} distinct directed edges on {n_nodes} nodes"
        )
    sampler = _ZipfSampler(n_nodes, skew, rng)
    edges: set = set()
    attempts = 0
    limit = 100 * max(n_edges, 1)
    while len(edges) < n_edges and attempts < limit:
        attempts += 1
        src = sampler.draw()
        dst = sampler.draw()
        if src != dst:
            edges.add((src, dst))
    if len(edges) < n_edges:
        # The skewed sampler keeps hitting the same hot pairs: top up
        # deterministically with the remaining pairs.
        for src in range(n_nodes):
            for dst in range(n_nodes):
                if len(edges) >= n_edges:
                    break
                if src != dst:
                    edges.add((src, dst))
            if len(edges) >= n_edges:
                break
    return list(edges)[:n_edges]


def epinions_like(n_edges: int, rng: random.Random, skew: float = 0.8) -> List[Edge]:
    """A synthetic stand-in for the Epinions graph at a chosen edge count.

    Epinions has roughly 6.7 edges per node and a heavy-tailed degree
    distribution, which is what drives the join-size explosion in the paper's
    experiments; both properties are preserved here.
    """
    return powerlaw_edges(_node_count_for(n_edges), n_edges, rng, skew=skew)


# ---------------------------------------------------------------------- #
# Query builders (Appendix A)
# ---------------------------------------------------------------------- #
def line_query(length: int) -> JoinQuery:
    """Line-k join: paths of ``length`` edges (``length`` relations)."""
    if length < 1:
        raise ValueError("line queries need at least one relation")
    spec = {
        f"G{i}": [f"x{i}", f"x{i + 1}"] for i in range(1, length + 1)
    }
    return JoinQuery.from_spec(f"line-{length}", spec)


def star_query(arms: int) -> JoinQuery:
    """Star-k join: ``arms`` edges sharing their source vertex."""
    if arms < 1:
        raise ValueError("star queries need at least one relation")
    spec = {f"G{i}": ["x0", f"x{i}"] for i in range(1, arms + 1)}
    return JoinQuery.from_spec(f"star-{arms}", spec)


def triangle_query() -> JoinQuery:
    """The triangle join (cyclic)."""
    return JoinQuery.from_spec(
        "triangle",
        {"G1": ["x1", "x2"], "G2": ["x2", "x3"], "G3": ["x1", "x3"]},
    )


def dumbbell_query() -> JoinQuery:
    """The dumbbell join of Figure 4: two triangles connected by an edge."""
    return JoinQuery.from_spec(
        "dumbbell",
        {
            "G1": ["x1", "x2"],
            "G2": ["x1", "x3"],
            "G3": ["x2", "x3"],
            "G4": ["x5", "x6"],
            "G5": ["x4", "x5"],
            "G6": ["x4", "x6"],
            "G7": ["x3", "x4"],
        },
    )


# ---------------------------------------------------------------------- #
# Streams
# ---------------------------------------------------------------------- #
def edge_stream(
    query: JoinQuery,
    edges: Sequence[Edge],
    rng: random.Random,
    relations: Optional[Sequence[str]] = None,
) -> List[StreamTuple]:
    """The paper's graph-stream setup.

    Every (logical) relation of ``query`` receives the full edge set in its
    own independently shuffled order; the per-relation streams are then
    interleaved uniformly at random.
    """
    names = list(relations) if relations is not None else list(query.relation_names)
    per_relation = []
    for name in names:
        rows = [tuple(edge) for edge in edges]
        rng.shuffle(rows)
        per_relation.append(stream_from_rows(name, rows))
    return interleave(per_relation, rng)


def graph_workload(
    query: JoinQuery,
    n_edges: int,
    rng: random.Random,
    model: str = "powerlaw",
) -> List[StreamTuple]:
    """Generate a synthetic graph and the corresponding insertion stream."""
    if model == "powerlaw":
        edges = epinions_like(n_edges, rng)
    elif model == "uniform":
        edges = uniform_edges(_node_count_for(n_edges), n_edges, rng)
    else:
        raise ValueError(f"unknown graph model {model!r}")
    return edge_stream(query, edges, rng)
