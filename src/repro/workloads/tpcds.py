"""A synthetic TPC-DS-like workload and the paper's QX / QY / QZ queries.

The paper runs QX, QY and QZ (taken from Zhao et al. [31]) on data produced
by the official TPC-DS generator.  ``dsdgen`` is not available offline, so
:func:`generate` creates synthetic tables with the same schemas, key /
foreign-key structure and scale-factor-proportional cardinalities, with
Zipf-skewed foreign keys so that the many-to-many joins (income band, item
category) exhibit the fan-out that stresses the samplers.

Column names are rewritten so that each query is a pure *natural* join: two
relations join exactly on their shared attribute names, which is how
:class:`~repro.relational.query.JoinQuery` expresses join conditions.
Non-join payload columns are kept so the grouping optimisation of
Section 4.4 has something to group away.

Each ``*_workload`` function returns ``(query, stream)`` where the stream
pre-loads the dimension tables and then streams the (shuffled) fact tables,
matching the experimental setup of Section 6.1.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..relational.query import JoinQuery
from ..relational.stream import StreamTuple, concatenate, stream_from_rows


# ---------------------------------------------------------------------- #
# Synthetic data
# ---------------------------------------------------------------------- #
@dataclass
class TPCDSData:
    """Raw synthetic tables (column layouts documented per attribute)."""

    scale_factor: float
    #: (d_date_sk,)
    date_dim: List[Tuple] = field(default_factory=list)
    #: (hd_demo_sk, hd_income_band_sk)
    household_demographics: List[Tuple] = field(default_factory=list)
    #: (c_customer_sk, c_current_hdemo_sk)
    customer: List[Tuple] = field(default_factory=list)
    #: (i_item_sk, i_category_id)
    item: List[Tuple] = field(default_factory=list)
    #: (ss_item_sk, ss_ticket_number, ss_customer_sk, ss_sold_date_sk)
    store_sales: List[Tuple] = field(default_factory=list)
    #: (sr_item_sk, sr_ticket_number, sr_customer_sk)
    store_returns: List[Tuple] = field(default_factory=list)
    #: (cs_bill_customer_sk, cs_sold_date_sk)
    catalog_sales: List[Tuple] = field(default_factory=list)


class _Skewed:
    """Zipf-skewed sampling from a finite domain of keys."""

    def __init__(self, keys: Sequence, skew: float, rng: random.Random) -> None:
        self._keys = list(keys)
        self._rng = rng
        total = 0.0
        self._cumulative: List[float] = []
        for rank in range(len(self._keys)):
            total += 1.0 / (rank + 1) ** skew
            self._cumulative.append(total)
        self._total = total

    def draw(self):
        index = bisect.bisect_left(self._cumulative, self._rng.random() * self._total)
        return self._keys[min(index, len(self._keys) - 1)]


def generate(scale_factor: float, rng: random.Random) -> TPCDSData:
    """Generate a synthetic TPC-DS-like dataset at the given scale factor.

    Cardinalities are proportional to ``scale_factor`` with the same
    dimension/fact ratios the real benchmark has (dimension tables small and
    nearly scale-independent, fact tables dominating).
    """
    if scale_factor <= 0:
        raise ValueError("scale factor must be positive")
    data = TPCDSData(scale_factor=scale_factor)
    n_dates = 120
    n_income_bands = 20
    n_demographics = max(40, int(60 * min(scale_factor, 4)))
    n_customers = max(50, int(400 * scale_factor))
    n_items = max(30, int(150 * scale_factor))
    n_categories = 12
    n_sales = max(100, int(1500 * scale_factor))
    n_catalog = max(50, int(700 * scale_factor))

    data.date_dim = [(date_sk,) for date_sk in range(1, n_dates + 1)]
    data.household_demographics = [
        (demo_sk, rng.randrange(1, n_income_bands + 1))
        for demo_sk in range(1, n_demographics + 1)
    ]
    demo_pick = _Skewed([row[0] for row in data.household_demographics], 1.0, rng)
    data.customer = [
        (customer_sk, demo_pick.draw()) for customer_sk in range(1, n_customers + 1)
    ]
    data.item = [
        (item_sk, rng.randrange(1, n_categories + 1)) for item_sk in range(1, n_items + 1)
    ]
    customer_pick = _Skewed([row[0] for row in data.customer], 0.8, rng)
    item_pick = _Skewed([row[0] for row in data.item], 0.8, rng)
    date_pick = _Skewed([row[0] for row in data.date_dim], 0.5, rng)
    for ticket in range(1, n_sales + 1):
        data.store_sales.append(
            (item_pick.draw(), ticket, customer_pick.draw(), date_pick.draw())
        )
    # Roughly 10% of sales are returned (same item + ticket identify the sale).
    for sale in data.store_sales:
        if rng.random() < 0.10:
            data.store_returns.append((sale[0], sale[1], sale[2]))
    seen_catalog = set()
    while len(seen_catalog) < n_catalog:
        seen_catalog.add((customer_pick.draw(), date_pick.draw()))
    data.catalog_sales = list(seen_catalog)
    return data


# ---------------------------------------------------------------------- #
# Query builders
# ---------------------------------------------------------------------- #
def qx_query() -> JoinQuery:
    """QX: store_sales ⋈ store_returns ⋈ catalog_sales ⋈ date_dim × 2."""
    return JoinQuery.from_spec(
        "QX",
        {
            "store_sales": ["item_sk", "ticket_number", "ss_customer_sk", "ss_date_sk"],
            "store_returns": ["item_sk", "ticket_number", "ret_customer_sk"],
            "catalog_sales": ["ret_customer_sk", "cs_date_sk"],
            "date_dim1": ["ss_date_sk"],
            "date_dim2": ["cs_date_sk"],
        },
        keys={"date_dim1": ["ss_date_sk"], "date_dim2": ["cs_date_sk"]},
    )


def qy_query() -> JoinQuery:
    """QY: store_sales ⋈ customer ⋈ demographics ⋈ demographics ⋈ customer."""
    return JoinQuery.from_spec(
        "QY",
        {
            "store_sales": ["c1_id", "ss_item_sk", "ss_ticket"],
            "customer1": ["c1_id", "d1_id"],
            "demographics1": ["d1_id", "income_band"],
            "demographics2": ["d2_id", "income_band"],
            "customer2": ["c2_id", "d2_id"],
        },
        keys={
            "customer1": ["c1_id"],
            "demographics1": ["d1_id"],
            "demographics2": ["d2_id"],
            "customer2": ["c2_id"],
        },
    )


def qz_query() -> JoinQuery:
    """QZ: QY extended with a self-join of item through the category id."""
    return JoinQuery.from_spec(
        "QZ",
        {
            "store_sales": ["c1_id", "i1_id", "ss_ticket"],
            "customer1": ["c1_id", "d1_id"],
            "demographics1": ["d1_id", "income_band"],
            "demographics2": ["d2_id", "income_band"],
            "customer2": ["c2_id", "d2_id"],
            "item1": ["i1_id", "category_id"],
            "item2": ["i2_id", "category_id"],
        },
        keys={
            "customer1": ["c1_id"],
            "demographics1": ["d1_id"],
            "demographics2": ["d2_id"],
            "customer2": ["c2_id"],
            "item1": ["i1_id"],
            "item2": ["i2_id"],
        },
    )


# ---------------------------------------------------------------------- #
# Workload builders (query + stream)
# ---------------------------------------------------------------------- #
def _preload_then_stream(
    preload: List[List[StreamTuple]],
    facts: List[List[StreamTuple]],
    rng: random.Random,
) -> List[StreamTuple]:
    fact_rows: List[StreamTuple] = []
    for stream in facts:
        fact_rows.extend(stream)
    rng.shuffle(fact_rows)
    return concatenate(preload + [fact_rows])


def qx_workload(data: TPCDSData, rng: random.Random) -> Tuple[JoinQuery, List[StreamTuple]]:
    """QX over the synthetic dataset: dimensions pre-loaded, facts streamed."""
    query = qx_query()
    dates = sorted({row[3] for row in data.store_sales} | {row[1] for row in data.catalog_sales})
    preload = [
        stream_from_rows("date_dim1", [(d,) for d in dates]),
        stream_from_rows("date_dim2", [(d,) for d in dates]),
    ]
    facts = [
        stream_from_rows(
            "store_sales",
            [(item, ticket, cust, date) for item, ticket, cust, date in data.store_sales],
        ),
        stream_from_rows("store_returns", list(data.store_returns)),
        stream_from_rows("catalog_sales", list(data.catalog_sales)),
    ]
    return query, _preload_then_stream(preload, facts, rng)


def qy_workload(data: TPCDSData, rng: random.Random) -> Tuple[JoinQuery, List[StreamTuple]]:
    """QY over the synthetic dataset."""
    query = qy_query()
    preload = [
        stream_from_rows("customer1", list(data.customer)),
        stream_from_rows("customer2", list(data.customer)),
        stream_from_rows("demographics1", list(data.household_demographics)),
        stream_from_rows("demographics2", list(data.household_demographics)),
    ]
    facts = [
        stream_from_rows(
            "store_sales",
            [(cust, item, ticket) for item, ticket, cust, _ in data.store_sales],
        ),
    ]
    return query, _preload_then_stream(preload, facts, rng)


def qz_workload(data: TPCDSData, rng: random.Random) -> Tuple[JoinQuery, List[StreamTuple]]:
    """QZ over the synthetic dataset."""
    query = qz_query()
    preload = [
        stream_from_rows("customer1", list(data.customer)),
        stream_from_rows("customer2", list(data.customer)),
        stream_from_rows("demographics1", list(data.household_demographics)),
        stream_from_rows("demographics2", list(data.household_demographics)),
        stream_from_rows("item1", list(data.item)),
        stream_from_rows("item2", list(data.item)),
    ]
    facts = [
        stream_from_rows(
            "store_sales",
            [(cust, item, ticket) for item, ticket, cust, _ in data.store_sales],
        ),
    ]
    return query, _preload_then_stream(preload, facts, rng)


WORKLOADS = {
    "QX": qx_workload,
    "QY": qy_workload,
    "QZ": qz_workload,
}
