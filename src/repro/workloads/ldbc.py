"""A synthetic LDBC-SNB-like workload and the BI Q10 join of the paper.

The paper evaluates the join skeleton of LDBC Social Network Benchmark
Business Intelligence query 10 at scale factor 1.  The official data
generator is not available offline, so :func:`generate` builds a synthetic
social network with the same schema and the fan-outs that make Q10
interesting (messages carrying several tags, skewed tag popularity, a
knows-graph with heavy-tailed degrees).

As with the TPC-DS workload, attribute names are chosen so Q10 is a pure
natural join, static tables are pre-loaded and dynamic tables are streamed in
random order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..relational.query import JoinQuery
from ..relational.stream import StreamTuple, concatenate, stream_from_rows


@dataclass
class LDBCData:
    """Raw synthetic tables (column layouts documented per attribute)."""

    scale_factor: float
    #: (country_id,)
    country: List[Tuple] = field(default_factory=list)
    #: (city_id, country_id)
    city: List[Tuple] = field(default_factory=list)
    #: (tagclass_id,)
    tagclass: List[Tuple] = field(default_factory=list)
    #: (tag_id, tagclass_id)
    tag: List[Tuple] = field(default_factory=list)
    #: (person_id, city_id)
    person: List[Tuple] = field(default_factory=list)
    #: (person1_id, person2_id)
    knows: List[Tuple] = field(default_factory=list)
    #: (message_id, creator_person_id)
    message: List[Tuple] = field(default_factory=list)
    #: (message_id, tag_id)
    has_tag: List[Tuple] = field(default_factory=list)


def generate(scale_factor: float, rng: random.Random) -> LDBCData:
    """Generate a synthetic LDBC-like social network."""
    if scale_factor <= 0:
        raise ValueError("scale factor must be positive")
    data = LDBCData(scale_factor=scale_factor)
    n_countries = 15
    n_cities = 60
    n_tagclasses = 10
    n_tags = 80
    n_persons = max(30, int(150 * scale_factor))
    n_messages = max(60, int(600 * scale_factor))
    avg_tags_per_message = 2
    avg_knows_per_person = 4

    data.country = [(country,) for country in range(1, n_countries + 1)]
    data.city = [
        (city, rng.randrange(1, n_countries + 1)) for city in range(1, n_cities + 1)
    ]
    data.tagclass = [(tagclass,) for tagclass in range(1, n_tagclasses + 1)]
    data.tag = [
        (tag, rng.randrange(1, n_tagclasses + 1)) for tag in range(1, n_tags + 1)
    ]
    data.person = [
        (person, rng.randrange(1, n_cities + 1)) for person in range(1, n_persons + 1)
    ]
    knows = set()
    for person in range(1, n_persons + 1):
        for _ in range(rng.randrange(1, 2 * avg_knows_per_person)):
            other = rng.randrange(1, n_persons + 1)
            if other != person:
                knows.add((person, other))
    data.knows = list(knows)
    data.message = [
        (message, rng.randrange(1, n_persons + 1)) for message in range(1, n_messages + 1)
    ]
    has_tag = set()
    for message in range(1, n_messages + 1):
        for _ in range(rng.randrange(1, 2 * avg_tags_per_message + 1)):
            # Skew tag popularity: low tag ids are much more frequent.
            tag = 1 + min(int(rng.expovariate(1.0) * n_tags / 6), n_tags - 1)
            has_tag.add((message, tag))
    data.has_tag = list(has_tag)
    return data


def q10_query() -> JoinQuery:
    """The join skeleton of LDBC BI Q10 (11 relations, acyclic)."""
    return JoinQuery.from_spec(
        "Q10",
        {
            "Message": ["msg_id", "person1_id"],
            "HasTag1": ["msg_id", "tag1_id"],
            "Tag1": ["tag1_id"],
            "HasTag2": ["msg_id", "tag2_id"],
            "Tag2": ["tag2_id", "tagclass_id"],
            "TagClass": ["tagclass_id"],
            "Person1": ["person1_id", "city_id"],
            "City": ["city_id", "country_id"],
            "Country": ["country_id"],
            "Knows": ["person1_id", "person2_id"],
            "Person2": ["person2_id"],
        },
        keys={
            "Message": ["msg_id"],
            "Tag1": ["tag1_id"],
            "Tag2": ["tag2_id"],
            "TagClass": ["tagclass_id"],
            "Person1": ["person1_id"],
            "City": ["city_id"],
            "Country": ["country_id"],
            "Person2": ["person2_id"],
        },
    )


def q10_workload(data: LDBCData, rng: random.Random) -> Tuple[JoinQuery, List[StreamTuple]]:
    """Q10 over the synthetic dataset: static tables pre-loaded, rest streamed."""
    query = q10_query()
    preload = [
        stream_from_rows("Tag1", [(tag,) for tag, _ in data.tag]),
        stream_from_rows("Tag2", list(data.tag)),
        stream_from_rows("TagClass", list(data.tagclass)),
        stream_from_rows("City", list(data.city)),
        stream_from_rows("Country", list(data.country)),
    ]
    dynamic: List[StreamTuple] = []
    dynamic.extend(stream_from_rows("Person1", list(data.person)))
    dynamic.extend(stream_from_rows("Person2", [(person,) for person, _ in data.person]))
    dynamic.extend(stream_from_rows("Knows", list(data.knows)))
    dynamic.extend(stream_from_rows("Message", list(data.message)))
    dynamic.extend(stream_from_rows("HasTag1", list(data.has_tag)))
    dynamic.extend(
        stream_from_rows("HasTag2", [(message, tag) for message, tag in data.has_tag])
    )
    rng.shuffle(dynamic)
    return query, concatenate(preload + [dynamic])
