# Developer entry points. Everything runs from the repo root with src/ on
# the path; no build step (pure Python).

PYTHONPATH := src
export PYTHONPATH

.PHONY: test test-smoke unit docs-check slow slow-smoke gauntlet gauntlet-smoke bench bench-smoke bench-fanout profile

# The default invocation: the fast deterministic suite + executable docs.
test: unit docs-check

# The CI smoke profile in one shot: tier-1 suite, executable docs, the
# worker-pool IPC contract on both transports, the serving-layer slice
# (gating: snapshot isolation is a correctness seam, not a perf knob), and
# the statistical suites at the scaled-down REPRO_STAT_TRIALS=60 trial
# counts (the whole thing finishes in well under three minutes).  The pool
# module already runs as part of `unit`; the second pass pins the `pipe`
# transport fallback, which the default-slab suite would otherwise never
# exercise end to end.  The REPRO_COLUMNAR=0 pass pins the numpy-free /
# columnar-disabled row path, which the default run (columnar on) would
# otherwise never exercise end to end.
test-smoke: unit docs-check
	REPRO_POOL_TRANSPORT=pipe python -m pytest tests/test_pool.py tests/test_shard_ingest.py -q
	REPRO_COLUMNAR=0 python -m pytest tests/test_columnar.py tests/test_batch_ingest.py tests/test_shard_ingest.py tests/test_rebalance.py tests/test_turnstile.py -q
	python -m pytest tests/test_serving.py -q
	REPRO_STAT_TRIALS=60 python -m pytest -m slow -q

unit:
	python -m pytest -x -q

# Execute every runnable fenced command in README.md / docs/ARCHITECTURE.md
# (slow fences are statically checked instead — see tools/docs_check.py).
docs-check:
	python tools/docs_check.py

# Statistical correctness suites (chi-square uniformity, differential,
# property harness) at full strength / at the CI smoke profile.
slow:
	python -m pytest -m slow -q

slow-smoke:
	REPRO_STAT_TRIALS=60 python -m pytest -m slow -q

# Workload gauntlet: every workload scenario through every ingestion mode,
# each cell asserting its equivalence tier (see docs/ARCHITECTURE.md,
# "Workload gauntlet").  Full strength / the scaled CI smoke profile
# (REPRO_GAUNTLET_SCALE shrinks streams and chi-square trial counts
# together; the smoke profile finishes in well under two minutes).
gauntlet:
	python -m pytest -m gauntlet -q

gauntlet-smoke:
	REPRO_GAUNTLET_SCALE=0.25 python -m pytest -m gauntlet -q

# Ingestion-seam acceptance benchmarks (each emits BENCH_*.json in CWD).
bench:
	python benchmarks/bench_batch_ingest.py
	python benchmarks/bench_shard_ingest.py
	python benchmarks/bench_rebalance.py
	python benchmarks/bench_fanout.py
	python benchmarks/bench_gauntlet.py
	python benchmarks/bench_serving.py
	python benchmarks/bench_turnstile.py

bench-fanout:
	python benchmarks/bench_fanout.py

# Profile-first workflow for the columnar hot path: GC-paused wall times
# plus cProfile hotspot tables for the batched and sharded ingestion modes
# (REPRO_COLUMNAR=0 profiles the row-path baseline for comparison).
profile:
	python tools/profile_hotpath.py

# Tiny-N smoke of the seven seam benchmarks (REPRO_BENCH_SCALE=0.02, one
# repeat): asserts each still *executes and emits valid JSON* — imports,
# streams, internal bit-identity/exact-count assertions, report schema.  No
# speedup thresholds: per the bench-box convention, ratios are far too noisy
# to gate CI on.  The emitted BENCH_*.json files are CI artifacts.
bench-smoke:
	python tools/bench_smoke.py
