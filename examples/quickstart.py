"""Quickstart: maintain a uniform sample over a streaming join.

This five-minute tour shows the three things most users need:

1. describe a natural-join query (``JoinQuery``);
2. stream tuples through ``ReservoirJoin`` and read the reservoir at any time;
3. draw ad-hoc uniform samples from the *full* current join with
   ``DynamicJoinIndex`` (the dynamic sampling-over-joins index).

Run it with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import DynamicJoinIndex, JoinQuery, ReservoirJoin


def main() -> None:
    rng = random.Random(42)

    # ------------------------------------------------------------------ #
    # 1. A query: paths of length three in a directed graph.
    #    Relations natural-join on shared attribute names, so
    #    R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4) chains on x2 and x3.
    # ------------------------------------------------------------------ #
    query = JoinQuery.from_spec(
        "line-3",
        {"R1": ["x1", "x2"], "R2": ["x2", "x3"], "R3": ["x3", "x4"]},
    )
    print(f"query: {query}")
    print(f"acyclic: {query.is_acyclic()}")

    # ------------------------------------------------------------------ #
    # 2. Stream edges in and keep k uniform samples of the join at all times.
    # ------------------------------------------------------------------ #
    sampler = ReservoirJoin(query, k=5, rng=rng)
    edges = [(rng.randrange(8), rng.randrange(8)) for _ in range(60)]
    for edge in edges:
        # Every logical relation receives every edge (a self-join over the
        # same graph); in a real deployment each relation has its own feed.
        for relation in query.relation_names:
            sampler.insert(relation, edge)

    print(f"\nprocessed {sampler.tuples_processed} stream tuples")
    print(f"simulated join-result stream length: {sampler.simulated_stream_length}")
    print(f"positions actually examined:         {sampler.items_examined}")
    print("\ncurrent reservoir (uniform sample of all 3-hop paths):")
    for result in sampler.sample:
        print(f"  {result['x1']} -> {result['x2']} -> {result['x3']} -> {result['x4']}")

    # ------------------------------------------------------------------ #
    # 3. Ad-hoc sampling from the full join with the dynamic index.
    # ------------------------------------------------------------------ #
    index = DynamicJoinIndex(query, maintain_root=True)
    for edge in edges:
        for relation in query.relation_names:
            index.insert(relation, edge)
    print(f"\n|J| (padded join size upper bound): {index.total_weight()}")
    print("three ad-hoc uniform samples from the current join:")
    for _ in range(3):
        print(f"  {index.sample(rng)}")


if __name__ == "__main__":
    main()
