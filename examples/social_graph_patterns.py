"""Sampling graph patterns from a streaming social network.

The motivating scenario of the paper's graph experiments: edges of a
who-trusts-whom network arrive continuously, and we want uniform samples of
*pattern occurrences* (paths, stars, triangles) without ever materialising
the pattern join, whose size explodes polynomially.

The example maintains three samplers side by side while the same edge stream
is replayed:

* 3-hop paths (acyclic line-3 join, ``ReservoirJoin``),
* 3-way stars (acyclic star-3 join with the grouping optimisation),
* triangles (cyclic join, ``CyclicReservoirJoin`` via a GHD).

It then uses the samples the way an analyst would: estimating which vertices
are the most common path midpoints.

Run it with:  python examples/social_graph_patterns.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import CyclicReservoirJoin, ReservoirJoin
from repro.workloads import graph


def main() -> None:
    rng = random.Random(7)

    # A synthetic Epinions-like network (heavy-tailed degrees).
    edges = graph.epinions_like(1200, rng)
    print(f"streaming {len(edges)} edges of a synthetic trust network")

    line3 = graph.line_query(3)
    star3 = graph.star_query(3)
    triangle = graph.triangle_query()

    path_sampler = ReservoirJoin(line3, k=300, rng=random.Random(1))
    star_sampler = ReservoirJoin(star3, k=300, rng=random.Random(2), grouping=True)
    triangle_sampler = CyclicReservoirJoin(triangle, k=300, rng=random.Random(3))

    # Each pattern query is a self-join: every logical relation sees the
    # full edge stream (independently shuffled, as in the paper's setup).
    streams = {
        "paths": (path_sampler, graph.edge_stream(line3, edges, random.Random(4))),
        "stars": (star_sampler, graph.edge_stream(star3, edges, random.Random(5))),
        "triangles": (triangle_sampler, graph.edge_stream(triangle, edges, random.Random(6))),
    }
    for name, (sampler, stream) in streams.items():
        sampler.process(stream)
        stats = sampler.statistics()
        print(
            f"\n{name}: reservoir holds {stats['sample_size']} uniform occurrences; "
            f"simulated result stream length {stats['simulated_stream_length']}, "
            f"only {stats['items_examined']} positions examined"
        )

    # Use the path sample the way an analyst would: which vertices appear
    # most often as the midpoint (x2) of a 3-hop path?  Because the sample is
    # uniform over path occurrences, sample frequencies estimate true shares.
    midpoints = Counter(result["x2"] for result in path_sampler.sample)
    print("\nestimated busiest path midpoints (vertex: share of sampled paths):")
    total = sum(midpoints.values())
    for vertex, count in midpoints.most_common(5):
        print(f"  vertex {vertex}: {count / total:.1%}")

    # Triangles per sampled star give a quick clustering signal.
    print(
        f"\ntriangle sample size vs star sample size: "
        f"{triangle_sampler.sample_size} / {star_sampler.sample_size}"
    )


if __name__ == "__main__":
    main()
