"""Reservoir sampling with an expensive predicate (Section 3 on its own).

The predicate-aware reservoir sampler is useful well beyond joins: whenever
items must pass an *expensive* test (here: edit distance to a query string)
and only qualifying items should be sampled, the skip mechanism avoids
evaluating the test on items that could never enter the reservoir anyway.

The example compares the classic approach (evaluate the predicate on every
item, then classic reservoir) against Algorithm 1 on the paper's Section 6.3
workload, reporting how many predicate evaluations each needed.

Run it with:  python examples/predicate_sampling.py
"""

from __future__ import annotations

import random
import time

from repro import PredicateReservoir, ReservoirSampler
from repro.core.skippable import ListStream
from repro.workloads.strings import EditDistancePredicate, string_stream


def main() -> None:
    rng = random.Random(3)
    n_items, density, k, threshold = 6000, 0.1, 64, 8
    items, query_string, _ = string_stream(n_items, density, rng, threshold=threshold)
    print(
        f"stream of {n_items} strings, {density:.0%} within edit distance "
        f"{threshold} of the query string; maintaining k={k} samples"
    )

    # Classic reservoir (RS): the predicate runs on every single item.
    rs_predicate = EditDistancePredicate(query_string, threshold)
    classic = ReservoirSampler(k, rng=random.Random(1))
    start = time.perf_counter()
    for item in items:
        if rs_predicate(item):
            classic.process(item)
    rs_seconds = time.perf_counter() - start

    # Predicate-aware reservoir (RSWP, Algorithm 1): skipped items are never
    # even looked at, so the predicate runs only on the examined positions.
    rswp_predicate = EditDistancePredicate(query_string, threshold)
    predicate_sampler = PredicateReservoir(k, predicate=rswp_predicate, rng=random.Random(1))
    start = time.perf_counter()
    predicate_sampler.run(ListStream(items))
    rswp_seconds = time.perf_counter() - start

    print(f"\nclassic RS : {rs_seconds:.3f}s, {rs_predicate.evaluations} predicate evaluations")
    print(f"RSWP       : {rswp_seconds:.3f}s, {rswp_predicate.evaluations} predicate evaluations")
    print(f"speed-up   : {rs_seconds / max(rswp_seconds, 1e-9):.1f}x")
    print(f"\nboth reservoirs hold {len(classic.sample)} and {len(predicate_sampler.sample)} "
          "qualifying strings respectively (uniform over all qualifying items).")


if __name__ == "__main__":
    main()
