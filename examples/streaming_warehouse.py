"""Maintaining a join synopsis for a streaming data warehouse.

The motivating scenario of the paper's relational experiments (and of
Zhao et al.'s "join synopsis maintenance"): fact tuples stream into a
warehouse whose analytical queries are joins over several dimension tables.
Instead of recomputing those joins, we keep a uniform reservoir over the join
results — a *join synopsis* — and answer approximate analytics straight from
it.

The example runs the paper's QZ join over a synthetic TPC-DS-like feed with
both Section 4.4 optimisations enabled (foreign-key combination + grouping).
The warehouse feed arrives in *micro-batches* — exactly the shape real
ingestion pipelines produce — so the synopsis is maintained through the
batched ingestion fast path (:class:`repro.BatchIngestor`): the sample is
uniform at every chunk boundary and ingestion is several times faster than
tuple-at-a-time processing.  The synopsis is then used to estimate a
group-by aggregate, compared with the exact answer computed by the
symmetric-hash-join oracle.

The second half scales the same pipeline horizontally: a
:class:`repro.ShardedIngestor` hash-partitions the feed across independent
synopsis replicas (one per shard, parallelizable across workers) and
recombines them with ``merged_sample`` — an *exactly* uniform sample of the
global join, good for the same analytics.

The third section shows what happens when the feed turns *skewed* — a
best-seller item floods the fact stream — and the partitioning goes hot: a
:class:`repro.RebalancingIngestor` notices the imbalance from the O(1)
per-shard load counters and re-partitions on a cooler attribute, replaying
the stored state, with the merged sample staying exactly uniform
throughout.

The fourth section fans the *same* click stream out to two consumers with
one pass (:class:`repro.FanoutIngestor`): a freshness-tuned dashboard
reservoir and a cyclic-pattern analytics sampler.  The stream is the
expensive resource — transport, decoding, chunking — so it is paid once;
each backend's reservoir is bit-identical to what a standalone run under
its derived seed would have produced.

The fifth section lets the feed *take things back*: a fraction of the
fact tuples is later retracted — late corrections, erasure requests —
and the synopsis is maintained through a
:class:`repro.TurnstileReservoirJoin` instead, staying exactly uniform
over the join results that survive.  A
:class:`repro.WindowedSampler` then narrows the same turnstile feed to a
sliding window ("the last N stream items"), where expiry is just
age-triggered retraction.

The final section makes the pipeline *durable*: the ingestor checkpoints
every few chunks (``BatchIngestor.save``), the process "crashes", and
``BatchIngestor.restore`` resumes in its place — finishing with a reservoir
bit-identical to a run that never crashed.

Run it with:  python examples/streaming_warehouse.py
"""

from __future__ import annotations

import os
import random
import tempfile
from collections import Counter

from repro import (
    BatchIngestor,
    CyclicReservoirJoin,
    FanoutIngestor,
    JoinQuery,
    RebalancingIngestor,
    ReservoirJoin,
    ShardedIngestor,
    SkewMonitor,
    StreamTuple,
    SymmetricHashJoinSampler,
)
from repro.ingest import chunked
from repro.workloads import tpcds

#: Micro-batch size of the simulated warehouse feed.  Analytics consumers
#: read the synopsis between chunks, where uniformity is guaranteed.
CHUNK_SIZE = 512


def category_shares(results) -> Counter:
    """Share of join results per item category (the group-by we estimate)."""
    counts = Counter(result["category_id"] for result in results)
    total = sum(counts.values()) or 1
    return Counter({key: value / total for key, value in counts.items()})


def main() -> None:
    rng = random.Random(11)
    data = tpcds.generate(scale_factor=0.2, rng=rng)
    query, stream = tpcds.qz_workload(data, rng)
    print(f"query {query.name}: {len(query.relations)} relations, "
          f"{len(stream)} stream tuples (dimensions pre-loaded, facts streamed)")

    # The production sampler: RSJoin with both optimisations (RSJoin_opt),
    # fed through the batched ingestion seam in micro-batches.
    synopsis = ReservoirJoin(
        query, k=500, rng=random.Random(1), foreign_key=True, grouping=True
    )
    ingestor = BatchIngestor(synopsis, chunk_size=CHUNK_SIZE)
    ingestor.ingest(stream)

    # The exact oracle (materialises every delta result — only viable at
    # this demo scale; that is exactly why the synopsis exists).
    oracle = SymmetricHashJoinSampler(query, k=1, rng=random.Random(2))
    for item in stream:
        oracle.insert(item.relation, item.row)

    stats = ingestor.statistics()
    print(f"\nexact join size so far:            {oracle.total_join_size}")
    print(f"chunks ingested (size {CHUNK_SIZE}):         {stats['batches_ingested']}")
    print(f"synopsis size (k):                  {stats['sample_size']}")
    print(f"simulated result-stream length:     {stats['simulated_stream_length']}")
    print(f"positions examined by the sampler:  {stats['items_examined']}")
    print(f"index propagation steps:            {stats['propagations']}")

    # Approximate analytics from the synopsis: share of join results per
    # item category, versus the exact distribution.
    from repro.relational import Database, join_results

    database = Database(query)
    for item in stream:
        database.insert(item.relation, item.row)
    exact = category_shares(join_results(query, database))
    estimated = category_shares(synopsis.sample)

    print("\ncategory share of join results (exact vs estimated from the synopsis):")
    for category, share in exact.most_common(5):
        print(f"  category {category}: exact {share:6.1%}   estimated {estimated[category]:6.1%}")

    worst = max(abs(exact[c] - estimated[c]) for c in exact)
    print(f"\nlargest absolute estimation error across categories: {worst:.1%}")

    # ------------------------------------------------------------------ #
    # Scale-out: the same synopsis, sharded across replicas
    # ------------------------------------------------------------------ #
    sharded = ShardedIngestor(
        query, k=500, num_shards=4, chunk_size=CHUNK_SIZE, rng=random.Random(3)
    )
    sharded.ingest(stream)
    shard_stats = sharded.statistics()
    merged = sharded.merged_sample()
    sharded_shares = category_shares(merged)
    worst_sharded = max(abs(exact[c] - sharded_shares[c]) for c in exact)
    print(f"\nsharded synopsis ({shard_stats['num_shards']} shards, partitioned "
          f"on {shard_stats['partition_attr']!r}):")
    print(f"  per-shard stream tuples:          {shard_stats['shard_tuples']}")
    print(f"  per-shard join results (exact):   {sharded.shard_counts()}")
    print(f"  broadcast deliveries:             {shard_stats['broadcast_deliveries']}")
    print(f"  merged sample size:               {len(merged)}")
    print(f"  largest sharded estimation error: {worst_sharded:.1%}")

    # ------------------------------------------------------------------ #
    # Skew: a hot item floods the feed, and the shards rebalance
    # ------------------------------------------------------------------ #
    chain = JoinQuery.from_spec(
        "clicks", {"R1": ["session", "item"], "R2": ["item", "day"], "R3": ["day", "price"]}
    )
    skew_rng = random.Random(7)
    burst = []
    for i in range(6000):
        relation = ("R1", "R2", "R3")[i % 3]
        # 70% of click traffic lands on one best-seller item.
        hot_item = 0 if skew_rng.random() < 0.7 else skew_rng.randrange(1, 64)
        row = {
            "R1": (skew_rng.randrange(5000), hot_item),
            "R2": (hot_item, skew_rng.randrange(64)),
            "R3": (skew_rng.randrange(64), skew_rng.randrange(5000)),
        }[relation]
        burst.append(StreamTuple(relation, row))

    adaptive = RebalancingIngestor(
        chain, k=500, num_shards=4, chunk_size=CHUNK_SIZE,
        # The natural partition key before the burst: the item id.  The
        # monitor exists precisely because no static choice is safe.
        partition_attr="item",
        monitor=SkewMonitor(threshold=1.3, min_tuples=1024),
        rng=random.Random(8),
    )
    adaptive.ingest(burst)
    adaptive_stats = adaptive.statistics()
    print(f"\nskewed burst ({len(burst)} tuples, hot item on {adaptive.query.name!r}):")
    for event in adaptive.rebalances:
        print(f"  rebalanced at tuple {event.at_tuples}: "
              f"{event.old_attr}/{event.old_shards} -> "
              f"{event.new_attr}/{event.new_shards} "
              f"(observed imbalance {event.observed_imbalance:.2f})")
    print(f"  load imbalance after rebalance:   {adaptive_stats['load_imbalance']:.2f}")
    print(f"  merged sample size:               {len(adaptive.merged_sample())}")

    # ------------------------------------------------------------------ #
    # Fan-out: one stream pass, several consumers
    # ------------------------------------------------------------------ #
    # The same click feed, two consumers: the dashboard wants a small,
    # frequently-read reservoir over the chain join, and the analytics team
    # samples a *cyclic* pattern — sessions whose session/item/day loop
    # closes.  Without fan-out each consumer pays its own pass over the
    # stream; with it, delivery is paid once and each backend stays
    # bit-identical to a standalone run under its derived seed.
    cyclic_clicks = JoinQuery.from_spec(
        "click-cycle",
        {"R1": ["session", "item"], "R2": ["item", "day"], "R3": ["day", "session"]},
    )
    fan_rng = random.Random(13)
    clicks = []
    for i in range(1_500):
        relation = ("R1", "R2", "R3")[i % 3]
        row = {
            "R1": (fan_rng.randrange(256), fan_rng.randrange(32)),
            "R2": (fan_rng.randrange(32), fan_rng.randrange(16)),
            "R3": (fan_rng.randrange(16), fan_rng.randrange(256)),
        }[relation]
        clicks.append(StreamTuple(relation, row))

    fan = FanoutIngestor(chunk_size=CHUNK_SIZE, rng=random.Random(21))
    fan.register("dashboard", lambda rng: ReservoirJoin(chain, k=50, rng=rng))
    fan.register(
        "analytics", lambda rng: CyclicReservoirJoin(cyclic_clicks, k=200, rng=rng)
    )
    fan.ingest(clicks)
    fan_stats = fan.statistics()
    print(f"\nfan-out over one click feed ({fan_stats['num_backends']} backends, "
          f"{fan_stats['batches_ingested']} chunks delivered once):")
    for name in fan.backend_names:
        backend = fan_stats["backends"][name]
        print(f"  {name:>10}: mode={backend['mode']}, "
              f"sample size {len(fan.backend(name).sample)}, "
              f"busy {backend['busy_seconds']:.3f}s")
    print(f"  critical path (1 worker/backend):  "
          f"{fan_stats['critical_path_seconds']:.3f}s")

    # The fan-out guarantee, demonstrated: the dashboard backend equals a
    # standalone batched run under the recorded derived seed, bit for bit.
    standalone = ReservoirJoin(
        chain, k=50, rng=random.Random(fan.backend_seed("dashboard"))
    )
    BatchIngestor(standalone, chunk_size=CHUNK_SIZE).ingest(clicks)
    identical = fan.backend("dashboard").sample == standalone.sample
    print(f"  dashboard == standalone rerun:     {identical}")

    # ------------------------------------------------------------------ #
    # Deletions: the feed retracts facts, the synopsis follows
    # ------------------------------------------------------------------ #
    # Corrections and erasure requests mean a warehouse feed is rarely
    # append-only for long.  Derive a turnstile version of the same fact
    # feed — ~20% of the inserts are later retracted, some retractions
    # arriving *before* their insert (tombstones) — and maintain the
    # synopsis through the deletion-capable sampler.  The estimate is now
    # computed over exactly the facts that survive.
    from repro import TurnstileReservoirJoin, WindowedSampler, surviving_rows, turnstile_stream
    from repro.ingest.shard import exact_result_count

    corrected = turnstile_stream(
        stream, random.Random(17), delete_fraction=0.2, tombstone_fraction=0.1
    )
    turnstile_synopsis = TurnstileReservoirJoin(query, k=500, rng=random.Random(18))
    BatchIngestor(turnstile_synopsis, chunk_size=CHUNK_SIZE).ingest(corrected)
    turnstile_stats = turnstile_synopsis.statistics()

    surviving_db = Database(query)
    for relation, rows in surviving_rows(corrected).items():
        for row in rows:
            surviving_db.insert(relation, row)
    exact_surviving = category_shares(join_results(query, surviving_db))
    estimated_surviving = category_shares(turnstile_synopsis.sample)
    worst_surviving = max(
        abs(exact_surviving[c] - estimated_surviving[c]) for c in exact_surviving
    )
    print(f"\nturnstile feed ({len(corrected)} items, "
          f"{turnstile_stats['deletes_applied']} deletes applied, "
          f"{turnstile_stats['annihilations']} tombstone annihilations):")
    print(f"  reservoir evictions / refills:     "
          f"{turnstile_stats['evictions']} / {turnstile_stats['refills']}")
    print(f"  surviving join results (exact):    {exact_result_count(turnstile_synopsis)}")
    print(f"  largest estimation error over the surviving join: {worst_surviving:.1%}")

    # Sliding window over the same feed: only the most recent stream items
    # count.  Expiry at chunk boundaries is ordinary retraction, so the
    # sample stays exactly uniform over the join *inside the window*.
    # Window width matters on a dimensions-then-facts feed: too narrow and
    # the dimension rows every join needs expire out from under the facts.
    windowed_synopsis = WindowedSampler(
        query, k=200, window=(7 * len(corrected)) // 10, rng=random.Random(19)
    )
    BatchIngestor(windowed_synopsis, chunk_size=CHUNK_SIZE).ingest(corrected)
    windowed_stats = windowed_synopsis.statistics()
    print(f"  windowed twin (last {windowed_stats['window']} items): "
          f"{windowed_stats['rows_in_window']} rows live, "
          f"{windowed_stats['expirations']} expired, "
          f"sample size {len(windowed_synopsis.sample)}")

    # ------------------------------------------------------------------ #
    # Durability: interval checkpointing and crash recovery
    # ------------------------------------------------------------------ #
    # A warehouse feed has no end, but the process ingesting it does —
    # deploys, rescheduling, crashes.  Checkpoint at chunk boundaries (the
    # uniformity points) every CHECKPOINT_EVERY chunks; after a crash,
    # restore() resumes in a fresh process with the same reservoir, the same
    # RNG stream and the same counters, so the result is bit-identical to a
    # run that never crashed.
    checkpoint_path = os.path.join(tempfile.mkdtemp(), "warehouse.ckpt")
    durable_chunk = 128  # finer micro-batches: more boundaries to save at
    chunks = list(chunked(stream, durable_chunk))
    CHECKPOINT_EVERY = max(1, len(chunks) // 8)

    durable = BatchIngestor(
        ReservoirJoin(query, k=500, rng=random.Random(31), foreign_key=True),
        chunk_size=durable_chunk,
    )
    crash_at = len(chunks) * 2 // 3
    checkpoints_written = 0
    for position, chunk in enumerate(chunks[:crash_at]):
        durable.ingest_batch(chunk)
        if (position + 1) % CHECKPOINT_EVERY == 0:
            durable.save(checkpoint_path)
            checkpoints_written += 1
    del durable  # the crash: the in-memory ingestor is gone

    recovered = BatchIngestor.restore(checkpoint_path)
    resume_from = recovered.batches_ingested  # chunks already in the checkpoint
    for chunk in chunks[resume_from:]:
        recovered.ingest_batch(chunk)

    reference = BatchIngestor(
        ReservoirJoin(query, k=500, rng=random.Random(31), foreign_key=True),
        chunk_size=durable_chunk,
    ).ingest(stream)

    print(f"\ninterval checkpointing (every {CHECKPOINT_EVERY} chunks, "
          f"{checkpoints_written} checkpoints, crash after chunk {crash_at}):")
    print(f"  checkpoint size on disk:           "
          f"{os.path.getsize(checkpoint_path):,} bytes")
    print(f"  chunks replayed after restore:     {len(chunks) - resume_from}")
    bit_identical = (
        recovered.sampler.sample == reference.sampler.sample
        and recovered.sampler.statistics() == reference.sampler.statistics()
    )
    print(f"  recovered == uninterrupted run:    {bit_identical}")


if __name__ == "__main__":
    main()
